#include "core/cpi_explorer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace usca::core {
namespace {

// The full Table-1 reproduction: the CPI explorer, treating the pipeline
// as a black box, must recover exactly the pairing matrix the paper
// measured on the Cortex-A7.
TEST(CpiExplorer, RecoversTable1Matrix) {
  const cpi_explorer explorer(sim::cortex_a7());
  const dual_issue_matrix matrix = explorer.explore();

  using pc = probe_class;
  const bool expected[num_probe_classes][num_probe_classes] = {
      //           mov    ALU    ALUi   mul    shift  br     ld/st
      /* mov   */ {true, true, true, false, true, true, false},
      /* ALU   */ {true, false, true, false, false, true, false},
      /* ALUi  */ {true, true, true, false, true, true, true},
      /* mul   */ {false, false, false, false, false, true, false},
      /* shift */ {false, false, true, false, false, true, false},
      /* br    */ {true, true, true, true, true, false, true},
      /* ld/st */ {true, false, true, false, false, true, false},
  };
  for (std::size_t row = 0; row < num_probe_classes; ++row) {
    for (std::size_t col = 0; col < num_probe_classes; ++col) {
      EXPECT_EQ(matrix.dual(static_cast<pc>(row), static_cast<pc>(col)),
                expected[row][col])
          << probe_class_name(static_cast<pc>(row)) << " + "
          << probe_class_name(static_cast<pc>(col));
    }
  }
}

TEST(CpiExplorer, HazardedVariantsAreNeverDualIssued) {
  const cpi_explorer explorer(sim::cortex_a7());
  for (const probe_class cls :
       {probe_class::mov, probe_class::alu, probe_class::alu_imm}) {
    const pair_measurement m = explorer.measure_pair(cls, cls);
    if (!std::isnan(m.cpi_hazarded)) {
      EXPECT_GE(m.cpi_hazarded, 0.95)
          << probe_class_name(cls) << " hazard variant";
    }
  }
}

TEST(CpiExplorer, MovPairCpiIsHalf) {
  const cpi_explorer explorer(sim::cortex_a7());
  const pair_measurement m =
      explorer.measure_pair(probe_class::mov, probe_class::mov);
  EXPECT_NEAR(m.cpi_hazard_free, 0.5, 0.05);
  EXPECT_NEAR(m.cpi_hazarded, 1.0, 0.1);
}

TEST(CpiExplorer, InfersCortexA7Structure) {
  const cpi_explorer explorer(sim::cortex_a7());
  const pipeline_inference inf = explorer.infer_structure();
  EXPECT_LT(inf.best_cpi, 0.6);
  EXPECT_EQ(inf.fetch_width, 2);
  EXPECT_EQ(inf.num_alus, 2);
  EXPECT_FALSE(inf.alus_identical);
  EXPECT_TRUE(inf.shifter_and_mul_on_single_alu);
  EXPECT_TRUE(inf.lsu_pipelined);
  EXPECT_TRUE(inf.mul_pipelined);
  EXPECT_EQ(inf.rf_read_ports, 3);
  EXPECT_EQ(inf.rf_write_ports, 2);
  EXPECT_FALSE(inf.nops_dual_issued);
}

TEST(CpiExplorer, InfersScalarStructure) {
  const cpi_explorer explorer(sim::cortex_a7_scalar());
  const pipeline_inference inf = explorer.infer_structure();
  EXPECT_GE(inf.best_cpi, 0.95);
  EXPECT_EQ(inf.fetch_width, 1);
  EXPECT_EQ(inf.num_alus, 1);
}

TEST(CpiExplorer, DetectsNonPipelinedUnits) {
  sim::micro_arch_config config = sim::cortex_a7();
  config.lsu_pipelined = false;
  config.mul_pipelined = false;
  const cpi_explorer explorer(config);
  const pipeline_inference inf = explorer.infer_structure();
  EXPECT_FALSE(inf.lsu_pipelined);
  EXPECT_FALSE(inf.mul_pipelined);
}

TEST(CpiExplorer, StructuralPolicyChangesTheMatrix) {
  sim::micro_arch_config structural = sim::cortex_a7();
  structural.policy = sim::issue_policy::structural;
  const cpi_explorer explorer(structural);
  // mov + ld/st pairs under a purely structural issue stage even though
  // the A7 PLA forbids it: micro-architectural policy is observable.
  const pair_measurement m =
      explorer.measure_pair(probe_class::mov, probe_class::ld_st);
  EXPECT_TRUE(m.dual_issued);
}

TEST(CpiExplorer, InferenceReportIsHumanReadable) {
  const cpi_explorer explorer(sim::cortex_a7());
  const std::string report = explorer.infer_structure().to_string();
  EXPECT_NE(report.find("fetch width"), std::string::npos);
  EXPECT_NE(report.find("RF read ports"), std::string::npos);
  EXPECT_NE(report.find("asymmetric"), std::string::npos);
}

} // namespace
} // namespace usca::core
