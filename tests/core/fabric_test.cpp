// Tests for the campaign fabric: lease split + journaled manifest
// round-trips, failpoint-injected worker deaths retried to convergence,
// mid-lease kills resumed from the partial shard, done-shard bit rot
// re-dispatched, coordinator crash-resume from the manifest, config
// binding enforcement, and — the acceptance property — a fabric run
// with injected failures merging byte-identical to one uninterrupted
// single-process archive.  The process runner is exercised directly
// with real subprocesses (exit codes, SIGKILL cancel).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/campaign_fabric.h"
#include "core/trace_archive.h"
#include "power/trace_store_reader.h"
#include "util/error.h"
#include "util/failpoint.h"

namespace usca {
namespace {

namespace fs = std::filesystem;

/// mark(1); eor; add; lsl; mark(2); add — the archive tests' program.
sim::program_image marked_program() {
  asmx::program_builder b;
  b.emit(isa::ins::mark(1));
  b.emit(isa::ins::eor(isa::reg::r1, isa::reg::r2, isa::reg::r3));
  b.emit(isa::ins::add(isa::reg::r4, isa::reg::r1, isa::reg::r2));
  b.emit(isa::ins::lsl(isa::reg::r5, isa::reg::r4, 2));
  b.emit(isa::ins::mark(2));
  b.emit(isa::ins::add(isa::reg::r6, isa::reg::r5, isa::reg::r4));
  return sim::program_image(b.build());
}

core::acquisition_campaign::setup_fn random_registers() {
  return [](std::size_t, util::xoshiro256& rng, sim::backend& pipe,
            std::vector<double>& labels) {
    const std::uint32_t a = rng.next_u32();
    const std::uint32_t b = rng.next_u32();
    pipe.state().set_reg(isa::reg::r2, a);
    pipe.state().set_reg(isa::reg::r3, b);
    labels.assign({static_cast<double>(a & 0xff),
                   static_cast<double>(b & 0xff)});
  };
}

core::acquisition_config base_config() {
  core::acquisition_config config;
  config.traces = 37;
  config.threads = 1;
  config.seed = 0xfabf;
  config.averaging = 2;
  config.window = core::campaign_window{1, 2};
  config.backend = sim::backend_kind::inorder;
  config.uarch = sim::cortex_a7();
  return config;
}

core::archive_options small_chunks() {
  core::archive_options options;
  options.chunk_traces = 8;
  return options;
}

/// Archives records [first, first + count) of the base campaign into
/// `path` — the worker body shared by every fabric test.
void archive_range(const sim::program_image& image, std::size_t first,
                   std::size_t count, const std::string& path) {
  core::acquisition_config sub = base_config();
  sub.first_index = first;
  sub.traces = count;
  core::archive_acquisition(image, sub, random_registers(), path,
                            small_chunks());
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Fresh working directory + fabric config bound to the base campaign:
/// 37 records in 5 leases of <=8, fast backoff for test speed.
struct fabric_fixture {
  explicit fabric_fixture(const char* name)
      : dir(std::string("/tmp/usca_fabric_test_") + name) {
    fs::remove_all(dir);
    fs::create_directories(dir);
    config.manifest_path = dir + "/manifest";
    config.shard_dir = dir + "/shards";
    config.traces = 37;
    config.lease_traces = 8;
    config.seed = base_config().seed;
    config.config_hash = core::salted_config_hash(
        core::acquisition_config_hash(base_config()), 0);
    config.workers = 2;
    config.max_attempts = 4;
    config.backoff_base = std::chrono::milliseconds(1);
    config.backoff_cap = std::chrono::milliseconds(4);
    config.poll_interval = std::chrono::milliseconds(1);
  }
  ~fabric_fixture() { fs::remove_all(dir); }

  std::string dir;
  core::fabric_config config;
};

class FabricTest : public ::testing::Test {
protected:
  void TearDown() override { util::failpoint_clear(); }

  core::thread_worker_runner archive_runner() {
    return core::thread_worker_runner(
        [this](const core::fabric_lease& lease) {
          archive_range(image_, lease.first_index, lease.traces,
                        lease.shard_path);
        });
  }

  std::string baseline(const std::string& dir) {
    const std::string path = dir + "/baseline.trc";
    archive_range(image_, 0, 37, path);
    return path;
  }

  sim::program_image image_ = marked_program();
};

TEST_F(FabricTest, SplitsJournalAndMergeByteIdentical) {
  fabric_fixture fx("clean");
  core::campaign_fabric fabric(fx.config);
  ASSERT_EQ(fabric.leases().size(), 5u); // 8+8+8+8+5 = 37
  EXPECT_EQ(fabric.leases()[4].first_index, 32u);
  EXPECT_EQ(fabric.leases()[4].traces, 5u);
  EXPECT_TRUE(fs::exists(fx.config.manifest_path)); // journaled on create

  core::thread_worker_runner runner = archive_runner();
  const core::fabric_report report = fabric.run(runner);
  EXPECT_EQ(report.leases, 5u);
  EXPECT_EQ(report.completed, 5u);
  EXPECT_EQ(report.worker_failures, 0u);

  const std::string merged = fx.dir + "/merged.trc";
  EXPECT_EQ(fabric.merge(merged), 37u);
  EXPECT_EQ(file_bytes(merged), file_bytes(baseline(fx.dir)));
}

TEST_F(FabricTest, InjectedWorkerDeathsAreRetriedToConvergence) {
  fabric_fixture fx("deaths");
  // Kill the 2nd and 4th worker launches at entry (the in-process
  // stand-in for a crashed worker process).
  util::failpoint_configure("fabric_worker:error@2;fabric_worker:error@4");

  core::campaign_fabric fabric(fx.config);
  core::thread_worker_runner runner = archive_runner();
  const core::fabric_report report = fabric.run(runner);
  EXPECT_EQ(report.completed, 5u);
  EXPECT_EQ(report.worker_failures, 2u);
  EXPECT_EQ(report.relaunches, 2u);
  EXPECT_GE(util::failpoint_hits("fabric_worker"), 7u);

  const std::string merged = fx.dir + "/merged.trc";
  EXPECT_EQ(fabric.merge(merged), 37u);
  EXPECT_EQ(file_bytes(merged), file_bytes(baseline(fx.dir)));
}

TEST_F(FabricTest, MidLeaseKillResumesThePartialShard) {
  fabric_fixture fx("midkill");
  core::campaign_fabric fabric(fx.config);
  // First attempt of lease 2 archives half its range and dies; the
  // re-issued attempt must RESUME the shard, not restart it.
  bool killed = false;
  core::thread_worker_runner runner(
      [this, &killed](const core::fabric_lease& lease) {
        if (lease.id == 2 && lease.attempts == 1) {
          killed = true;
          archive_range(image_, lease.first_index, lease.traces / 2,
                        lease.shard_path);
          throw util::analysis_error("injected mid-lease kill");
        }
        archive_range(image_, lease.first_index, lease.traces,
                      lease.shard_path);
      });
  const core::fabric_report report = fabric.run(runner);
  EXPECT_TRUE(killed);
  EXPECT_EQ(report.completed, 5u);
  EXPECT_EQ(report.worker_failures, 1u);

  const std::string merged = fx.dir + "/merged.trc";
  EXPECT_EQ(fabric.merge(merged), 37u);
  EXPECT_EQ(file_bytes(merged), file_bytes(baseline(fx.dir)));
}

TEST_F(FabricTest, CoordinatorCrashResumesFromTheManifest) {
  fabric_fixture fx("resume");
  // "First coordinator": lease 1 fails every attempt, exhausting its
  // budget — run() throws with everything else journaled as done.
  {
    core::fabric_config config = fx.config;
    config.max_attempts = 2;
    core::campaign_fabric fabric(config);
    core::thread_worker_runner runner(
        [this](const core::fabric_lease& lease) {
          if (lease.id == 1) {
            throw util::analysis_error("injected persistent failure");
          }
          archive_range(image_, lease.first_index, lease.traces,
                        lease.shard_path);
        });
    EXPECT_THROW(fabric.run(runner), util::analysis_error);
  }

  // "Second coordinator": reloads the manifest, revalidates the done
  // shards, and re-runs only what the crash left unfinished.  (How many
  // leases were journaled done before the abort depends on scheduling —
  // the first coordinator cancels its in-flight workers when it throws
  // — but nothing done is ever re-launched.)
  core::campaign_fabric fabric(fx.config);
  std::size_t launched = 0;
  core::thread_worker_runner runner(
      [this, &launched](const core::fabric_lease& lease) {
        ++launched;
        archive_range(image_, lease.first_index, lease.traces,
                      lease.shard_path);
      });
  const core::fabric_report report = fabric.run(runner);
  EXPECT_EQ(report.already_done + report.completed, 5u);
  EXPECT_GE(report.completed, 1u); // lease 1 at minimum
  EXPECT_EQ(launched, report.completed);

  const std::string merged = fx.dir + "/merged.trc";
  EXPECT_EQ(fabric.merge(merged), 37u);
  EXPECT_EQ(file_bytes(merged), file_bytes(baseline(fx.dir)));
}

TEST_F(FabricTest, RottenDoneShardIsRedispatched) {
  fabric_fixture fx("rot");
  {
    core::campaign_fabric fabric(fx.config);
    core::thread_worker_runner runner = archive_runner();
    fabric.run(runner);
  }
  // Bit rot between coordinator runs: flip a payload byte of shard 3.
  {
    std::fstream f(fx.config.shard_dir + "/shard-000003.trc",
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(200);
    f.write("\xff", 1);
  }
  core::campaign_fabric fabric(fx.config);
  core::thread_worker_runner runner = archive_runner();
  const core::fabric_report report = fabric.run(runner);
  EXPECT_EQ(report.invalid_shards, 1u);
  EXPECT_EQ(report.already_done, 4u);
  EXPECT_EQ(report.completed, 1u);

  const std::string merged = fx.dir + "/merged.trc";
  EXPECT_EQ(fabric.merge(merged), 37u);
  EXPECT_EQ(file_bytes(merged), file_bytes(baseline(fx.dir)));
}

TEST_F(FabricTest, ManifestConfigBindingIsEnforced) {
  fabric_fixture fx("binding");
  { core::campaign_fabric fabric(fx.config); } // journals the manifest

  core::fabric_config other = fx.config;
  other.config_hash ^= 1;
  EXPECT_THROW(core::campaign_fabric{other}, util::analysis_error);

  core::fabric_config reseeded = fx.config;
  reseeded.seed ^= 1;
  EXPECT_THROW(core::campaign_fabric{reseeded}, util::analysis_error);
}

TEST_F(FabricTest, ExhaustedLeaseThrowsButKeepsTheJournal) {
  fabric_fixture fx("exhausted");
  core::fabric_config config = fx.config;
  config.max_attempts = 3;
  core::campaign_fabric fabric(config);
  std::size_t attempts = 0;
  core::thread_worker_runner runner(
      [&attempts](const core::fabric_lease&) {
        ++attempts;
        throw util::analysis_error("always fails");
      });
  try {
    fabric.run(runner);
    FAIL() << "exhausting a lease must throw";
  } catch (const util::analysis_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("failed after 3 attempts"), std::string::npos)
        << what;
    EXPECT_NE(what.find(config.manifest_path), std::string::npos) << what;
  }
  EXPECT_TRUE(fs::exists(config.manifest_path));
}

TEST_F(FabricTest, MergeRefusesNonContiguousShards) {
  fabric_fixture fx("gaps");
  const std::string a = fx.dir + "/a.trc";
  const std::string c = fx.dir + "/c.trc";
  archive_range(image_, 0, 8, a);
  archive_range(image_, 16, 8, c); // records 8..16 missing
  EXPECT_THROW(core::merge_stores({a, c}, fx.dir + "/out.trc"),
               util::analysis_error);
  // In order and gapless, the same shards merge fine.
  const std::string b = fx.dir + "/b.trc";
  archive_range(image_, 8, 8, b);
  EXPECT_EQ(core::merge_stores({a, b, c}, fx.dir + "/out.trc"), 24u);
  const power::trace_store_reader reader(fx.dir + "/out.trc");
  EXPECT_EQ(reader.traces(), 24u);
}

TEST(ProcessRunner, ReportsExitStatusAndKillsOnCancel) {
  std::vector<std::string> argv;
  core::process_worker_runner runner(
      [&argv](const core::fabric_lease&) { return argv; });
  core::fabric_lease lease;

  const auto wait_done = [&runner](std::size_t handle) {
    core::worker_status status = core::worker_status::running;
    for (int i = 0; i < 2000 && status == core::worker_status::running;
         ++i) {
      status = runner.poll(handle);
      if (status == core::worker_status::running) {
        usleep(5'000);
      }
    }
    return status;
  };

  argv = {"/bin/true"};
  EXPECT_EQ(wait_done(runner.start(lease)), core::worker_status::succeeded);
  argv = {"/bin/false"};
  EXPECT_EQ(wait_done(runner.start(lease)), core::worker_status::failed);
  argv = {"/does/not/exist"};
  EXPECT_EQ(wait_done(runner.start(lease)), core::worker_status::failed);

  argv = {"/bin/sleep", "60"};
  const std::size_t straggler = runner.start(lease);
  EXPECT_EQ(runner.poll(straggler), core::worker_status::running);
  runner.cancel(straggler); // SIGKILL + reap; must not block for 60s
  EXPECT_EQ(runner.poll(straggler), core::worker_status::failed);
}

} // namespace
} // namespace usca
