// Batch-size invariance of the streaming analysis layer: pumping one AES
// campaign — live or replayed from its archive — through the CPA and
// TVLA passes must produce BIT-identical results at every batch size
// ({1, 7, 256, whole-chunk}) and bit-identical to the hand-rolled
// per-trace accumulation, on both core models.  This is the contract
// that makes the batched API a pure performance layer: tiles never
// change any number.
#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "core/analysis_sinks.h"
#include "core/trace_archive.h"
#include "crypto/aes128.h"
#include "power/trace_store_reader.h"
#include "util/bitops.h"

namespace usca::core {
namespace {

const crypto::aes_key kKey = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                              0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                              0x09, 0xcf, 0x4f, 0x3c};

double hw_model(std::size_t guess, std::size_t pt_byte) {
  return static_cast<double>(util::hamming_weight(
      crypto::subbytes_hypothesis(static_cast<std::uint8_t>(pt_byte),
                                  static_cast<std::uint8_t>(guess))));
}

campaign_config small_config(sim::backend_kind backend, std::size_t traces) {
  campaign_config config;
  config.traces = traces;
  config.threads = 1;
  config.seed = 0xba7c;
  config.averaging = 2;
  config.window = {crypto::mark_encrypt_begin, crypto::mark_round1_end};
  config.backend = backend;
  if (backend == sim::backend_kind::ooo) {
    config.uarch = sim::cortex_a7_ooo();
  }
  return config;
}

struct reference_analyses {
  std::optional<stats::partitioned_cpa> cpa;
  std::optional<stats::tvla_accumulator> tvla;
};

/// The per-trace ground truth: add_trace / add_fixed / add_random, one
/// record at a time, straight from the campaign's record stream.
reference_analyses per_trace_reference(trace_campaign& campaign) {
  reference_analyses ref;
  campaign.run([&ref](trace_record&& rec) {
    if (!ref.cpa) {
      ref.cpa.emplace(rec.samples.size());
      ref.tvla.emplace(rec.samples.size());
    }
    ref.cpa->add_trace(rec.plaintext[0], rec.samples);
    if (rec.index % 2 == 0) {
      ref.tvla->add_fixed(rec.samples);
    } else {
      ref.tvla->add_random(rec.samples);
    }
  });
  return ref;
}

void expect_identical(const reference_analyses& ref, const cpa_sink& cpa,
                      const tvla_sink& tvla, const std::string& what) {
  ASSERT_EQ(ref.cpa->traces(), cpa.cpa().traces()) << what;
  const stats::cpa_result expected = ref.cpa->solve(hw_model, 256);
  const stats::cpa_result got = cpa.cpa().solve(hw_model, 256);
  for (std::size_t g = 0; g < 256; ++g) {
    for (std::size_t s = 0; s < expected.samples; ++s) {
      ASSERT_EQ(expected.corr[g][s], got.corr[g][s])
          << what << ": guess " << g << " sample " << s;
    }
  }
  for (std::size_t s = 0; s < ref.tvla->samples(); ++s) {
    ASSERT_EQ(ref.tvla->at(s).t, tvla.tvla().at(s).t)
        << what << ": sample " << s;
  }
}

class BatchIdentity
    : public ::testing::TestWithParam<sim::backend_kind> {};

TEST_P(BatchIdentity, LiveAndReplayMatchPerTraceAtEveryBatchSize) {
  const sim::backend_kind backend = GetParam();
  const std::size_t traces =
      backend == sim::backend_kind::ooo ? 60 : 150;
  campaign_config config = small_config(backend, traces);

  trace_campaign reference_campaign(config, kKey);
  const reference_analyses ref = per_trace_reference(reference_campaign);

  // Archive once; chunk size 32 so multi-chunk geometry is exercised.
  const std::string path = "/tmp/usca_batch_identity_" +
                           std::to_string(static_cast<int>(backend)) +
                           ".trc";
  std::remove(path.c_str());
  archive_options store;
  store.chunk_traces = 32;
  archive_aes_campaign(config, kKey, path, store);
  const power::trace_store_reader reader(path);
  ASSERT_EQ(reader.traces(), traces);

  const std::size_t batch_sizes[] = {1, 7, 256,
                                     reader.descriptor().chunk_traces};
  for (const std::size_t batch : batch_sizes) {
    pump_options options;
    options.batch_traces = batch;
    {
      trace_campaign campaign(config, kKey);
      aes_campaign_source source(campaign);
      cpa_sink cpa(0);
      tvla_sink tvla;
      analysis_pass* passes[] = {&cpa, &tvla};
      pump(source, passes, options);
      expect_identical(ref, cpa, tvla,
                       "live batch=" + std::to_string(batch));
    }
    {
      archive_source source(reader);
      cpa_sink cpa(0);
      tvla_sink tvla;
      analysis_pass* passes[] = {&cpa, &tvla};
      pump(source, passes, options);
      expect_identical(ref, cpa, tvla,
                       "replay batch=" + std::to_string(batch));
    }
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(BothBackends, BatchIdentity,
                         ::testing::Values(sim::backend_kind::inorder,
                                           sim::backend_kind::ooo),
                         [](const auto& info) {
                           return info.param == sim::backend_kind::ooo
                                      ? "ooo"
                                      : "inorder";
                         });

TEST(BatchSources, BatchBuilderRejectsGapsAtTileBoundariesToo) {
  batch_builder builder(2);
  const double label = 1.0;
  const double sample = 2.0;
  const auto deliver = [](const trace_batch_view&) {};
  builder.push(0, {&label, 1}, {&sample, 1}, deliver);
  builder.push(1, {&label, 1}, {&sample, 1}, deliver); // tile flushed
  // Index 3 skips 2 exactly at the tile boundary — must still throw.
  EXPECT_ANY_THROW(builder.push(3, {&label, 1}, {&sample, 1}, deliver));
  builder.push(2, {&label, 1}, {&sample, 1}, deliver);
  EXPECT_ANY_THROW(builder.append(4, {&label, 1}, {&sample, 1}));
}

TEST(BatchSources, ArchiveSourceServesWholeChunksZeroCopy) {
  campaign_config config = small_config(sim::backend_kind::inorder, 70);
  const std::string path = "/tmp/usca_batch_chunks.trc";
  std::remove(path.c_str());
  archive_options store;
  store.chunk_traces = 32;
  archive_aes_campaign(config, kKey, path, store);
  const power::trace_store_reader reader(path);

  archive_source source(reader);
  std::vector<std::size_t> batch_counts;
  source.for_each_batch(1'000'000, [&](const trace_batch_view& batch) {
    batch_counts.push_back(batch.count);
    // f64 store: the tile must alias the mapping (no copies) — row 0 of
    // the batch is exactly the reader's zero-copy row view.
    EXPECT_EQ(batch.samples_row(0).data(),
              reader.samples_row(batch.first_index - reader.first_index())
                  .data());
  });
  ASSERT_EQ(batch_counts.size(), reader.chunk_count());
  EXPECT_EQ(batch_counts[0], 32u);
  EXPECT_EQ(batch_counts.back(), 70u % 32u);
  std::remove(path.c_str());
}

} // namespace
} // namespace usca::core
