#include "core/leakage_characterizer.h"

#include <gtest/gtest.h>

namespace usca::core {
namespace {

characterizer_options fast_options() {
  characterizer_options opts;
  opts.traces = 6'000; // enough for every weight-1 source; tests of the
  opts.averaging = 8;  // 0.1-weight shift buffer use the full bench instead
  opts.attribution_trials = 800;
  return opts;
}

const characterization_benchmark& benchmark_named(const std::string& name) {
  static const std::vector<characterization_benchmark> all =
      table2_benchmarks();
  for (const auto& b : all) {
    if (b.name.find(name) != std::string::npos) {
      return b;
    }
  }
  throw std::runtime_error("benchmark not found: " + name);
}

const model_verdict& verdict_for(const benchmark_report& report,
                                 const std::string& label,
                                 table2_column column) {
  for (const auto& v : report.verdicts) {
    if (v.label == label && v.column == column) {
      return v;
    }
  }
  throw std::runtime_error("verdict not found: " + label);
}

TEST(Characterizer, ThereAreSevenBenchmarks) {
  EXPECT_EQ(table2_benchmarks().size(), 7u);
}

TEST(Characterizer, MovNopMovFindsBusAndLatchLeaks) {
  const leakage_characterizer chr(sim::cortex_a7(),
                                  power::synthesis_config{});
  const benchmark_report report =
      chr.characterize(benchmark_named("mov-nop-mov"), fast_options());
  EXPECT_FALSE(report.observed_dual_issue);
  // Register file: black.
  EXPECT_FALSE(
      verdict_for(report, "HW(rB)", table2_column::register_file).detected);
  EXPECT_FALSE(
      verdict_for(report, "HW(rD)", table2_column::register_file).detected);
  // IS/EX buffer: HW singles (nop zeroization) + HD across the nop.
  EXPECT_TRUE(
      verdict_for(report, "HW(rB)", table2_column::is_ex_buffer).detected);
  EXPECT_TRUE(
      verdict_for(report, "HD(rB,rD)", table2_column::is_ex_buffer).detected);
  // EX/WB buffer mirrors it.
  EXPECT_TRUE(
      verdict_for(report, "HD(rB,rD)", table2_column::ex_wb_buffer).detected);
  EXPECT_TRUE(report.matches_expectations());
}

TEST(Characterizer, DualIssuedAddsDoNotCombineOperands) {
  const leakage_characterizer chr(sim::cortex_a7(),
                                  power::synthesis_config{});
  const benchmark_report report =
      chr.characterize(benchmark_named("add-addimm-dual"), fast_options());
  EXPECT_TRUE(report.observed_dual_issue);
  EXPECT_FALSE(
      verdict_for(report, "HD(rB,rE)", table2_column::is_ex_buffer).detected);
  EXPECT_FALSE(
      verdict_for(report, "HD(rA',rD')", table2_column::ex_wb_buffer)
          .detected);
  // But each instruction's own values still leak.
  EXPECT_TRUE(
      verdict_for(report, "HW(rA')", table2_column::alu_buffer).detected);
  EXPECT_TRUE(report.matches_expectations());
}

TEST(Characterizer, SingleIssuedAddsCombineOperandsAndResults) {
  const leakage_characterizer chr(sim::cortex_a7(),
                                  power::synthesis_config{});
  const benchmark_report report =
      chr.characterize(benchmark_named("add-add"), fast_options());
  EXPECT_FALSE(report.observed_dual_issue);
  EXPECT_TRUE(
      verdict_for(report, "HD(rB,rE)", table2_column::is_ex_buffer).detected);
  EXPECT_TRUE(
      verdict_for(report, "HD(rC,rF)", table2_column::is_ex_buffer).detected);
  EXPECT_TRUE(
      verdict_for(report, "HD(rA',rD')", table2_column::ex_wb_buffer)
          .detected);
  EXPECT_TRUE(report.matches_expectations());
}

TEST(Characterizer, LoadPairLeaksThroughMdrNotBuses) {
  const leakage_characterizer chr(sim::cortex_a7(),
                                  power::synthesis_config{});
  const benchmark_report report =
      chr.characterize(benchmark_named("ldr-ldr"), fast_options());
  EXPECT_TRUE(verdict_for(report, "HD(rA,rC)", table2_column::mdr).detected);
  EXPECT_FALSE(
      verdict_for(report, "HD(rA,rC)", table2_column::is_ex_buffer).detected);
  EXPECT_FALSE(
      verdict_for(report, "HD(rA,rC)", table2_column::align_buffer).detected);
  EXPECT_TRUE(report.matches_expectations());
}

TEST(Characterizer, StorePairLeaksDataOnOperandBus) {
  const leakage_characterizer chr(sim::cortex_a7(),
                                  power::synthesis_config{});
  const benchmark_report report =
      chr.characterize(benchmark_named("str-str"), fast_options());
  EXPECT_TRUE(
      verdict_for(report, "HD(rA,rC)", table2_column::is_ex_buffer).detected);
  EXPECT_TRUE(verdict_for(report, "HD(rA,rC)", table2_column::mdr).detected);
  EXPECT_TRUE(report.matches_expectations());
}

TEST(Characterizer, AlignBufferCombinesByteLoadsAcrossWordLoads) {
  const leakage_characterizer chr(sim::cortex_a7(),
                                  power::synthesis_config{});
  const benchmark_report report = chr.characterize(
      benchmark_named("ldr-ldrb-interleave"), fast_options());
  EXPECT_TRUE(
      verdict_for(report, "HD(bC,bG)", table2_column::align_buffer).detected);
  EXPECT_FALSE(
      verdict_for(report, "HD(bC,WE)", table2_column::align_buffer).detected);
  EXPECT_TRUE(verdict_for(report, "HD(WC,WE)", table2_column::mdr).detected);
  EXPECT_TRUE(report.matches_expectations());
}

TEST(Characterizer, RfWeightAblationMakesRegisterFileLeak) {
  power::synthesis_config leaky_rf;
  leaky_rf.weights[sim::component::rf_read_port] = 1.0;
  const leakage_characterizer chr(sim::cortex_a7(), leaky_rf);
  const benchmark_report report =
      chr.characterize(benchmark_named("mov-nop-mov"), fast_options());
  // With a non-zero RF weight the register file is no longer black: the
  // read port now combines the two mov operands (rB -> rD on port 0), so
  // the paper's "no RF leakage" finding is a property of the device, not
  // of the method.
  EXPECT_TRUE(verdict_for(report, "HD(rB,rD)", table2_column::register_file)
                  .detected);
  EXPECT_FALSE(report.matches_expectations());
}

TEST(Characterizer, ThereAreThreeExtensionBenchmarks) {
  EXPECT_EQ(extension_benchmarks().size(), 3u);
}

TEST(Characterizer, MulPairCombinesOperandsAndProducts) {
  const leakage_characterizer chr(sim::cortex_a7(),
                                  power::synthesis_config{});
  const auto benches = extension_benchmarks();
  const benchmark_report report = chr.characterize(benches[0], fast_options());
  EXPECT_FALSE(report.observed_dual_issue); // muls never pair
  EXPECT_TRUE(
      verdict_for(report, "HD(rB,rE)", table2_column::is_ex_buffer).detected);
  EXPECT_TRUE(
      verdict_for(report, "HD(rA',rD')", table2_column::ex_wb_buffer)
          .detected);
  EXPECT_TRUE(report.matches_expectations());
}

TEST(Characterizer, FailedPredicationLeaksOperandsButNotResults) {
  const leakage_characterizer chr(sim::cortex_a7(),
                                  power::synthesis_config{});
  const auto benches = extension_benchmarks();
  const benchmark_report report = chr.characterize(benches[1], fast_options());
  // The squashed mov's operand transits the IS/EX bus...
  EXPECT_TRUE(
      verdict_for(report, "HW(rB)", table2_column::is_ex_buffer).detected);
  EXPECT_TRUE(
      verdict_for(report, "HD(rB,rD)", table2_column::is_ex_buffer).detected);
  // ...but never reaches the ALU or the write-back path.
  EXPECT_FALSE(
      verdict_for(report, "HW(rB)", table2_column::alu_buffer).detected);
  EXPECT_FALSE(
      verdict_for(report, "HD(rB,rD)", table2_column::ex_wb_buffer).detected);
  EXPECT_TRUE(report.matches_expectations());
}

TEST(Characterizer, DualIssuedLoadAluPairKeepsWritebacksSeparate) {
  const leakage_characterizer chr(sim::cortex_a7(),
                                  power::synthesis_config{});
  const auto benches = extension_benchmarks();
  const benchmark_report report = chr.characterize(benches[2], fast_options());
  EXPECT_TRUE(report.observed_dual_issue);
  EXPECT_FALSE(
      verdict_for(report, "HD(X,rA)", table2_column::ex_wb_buffer).detected);
  EXPECT_TRUE(report.matches_expectations());
}

TEST(Characterizer, TimingIsDataIndependent) {
  const leakage_characterizer chr(sim::cortex_a7(),
                                  power::synthesis_config{});
  characterizer_options tiny = fast_options();
  tiny.traces = 50;
  // Would throw if the window length varied across trials.
  const benchmark_report report =
      chr.characterize(benchmark_named("add-add"), tiny);
  EXPECT_GT(report.samples, 10u);
}

} // namespace
} // namespace usca::core
