// Tests for the campaign observability layer: heartbeat file round
// trips (including torn/foreign files), the background heartbeat
// publisher lifecycle, snapshot export framing, the progress meter,
// and the load-bearing invariant of the whole telemetry stack —
// a campaign archives byte-identical stores with telemetry on and off.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "core/campaign_telemetry.h"
#include "core/trace_archive.h"
#include "util/json_writer.h"
#include "util/telemetry.h"

namespace usca {
namespace {

std::string temp_path(const char* name) {
  return std::string("/tmp/usca_campaign_telemetry_test_") + name;
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

class CampaignTelemetryTest : public ::testing::Test {
protected:
  void TearDown() override {
    telem::set_enabled(false);
    telem::set_export_path("");
    telem::reset_for_test();
  }
};

// ----------------------------------------------------------- heartbeat

TEST_F(CampaignTelemetryTest, HeartbeatPathSuffix) {
  EXPECT_EQ(core::heartbeat_path("/data/run/shard_0003.trc"),
            "/data/run/shard_0003.trc.hb");
}

TEST_F(CampaignTelemetryTest, HeartbeatRoundTrip) {
  const std::string path = temp_path("hb_roundtrip");
  std::remove(path.c_str());

  core::worker_heartbeat hb;
  hb.pid = 4321;
  hb.first_index = 1000;
  hb.traces = 250;
  hb.produced = 97;
  hb.wall_ms = 1722000000123ULL;
  hb.state = "running";
  core::write_heartbeat(path, hb);

  const auto back = core::read_heartbeat(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->pid, hb.pid);
  EXPECT_EQ(back->first_index, hb.first_index);
  EXPECT_EQ(back->traces, hb.traces);
  EXPECT_EQ(back->produced, hb.produced);
  EXPECT_EQ(back->wall_ms, hb.wall_ms);
  EXPECT_EQ(back->state, hb.state);

  // Rewrites go through tmp + rename, so no stale .tmp survives.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST_F(CampaignTelemetryTest, MissingOrGarbageHeartbeatIsNullopt) {
  EXPECT_FALSE(core::read_heartbeat(temp_path("hb_missing")).has_value());

  const std::string path = temp_path("hb_garbage");
  {
    std::ofstream out(path);
    out << "not a heartbeat at all\n";
  }
  EXPECT_FALSE(core::read_heartbeat(path).has_value());
  std::remove(path.c_str());
}

TEST_F(CampaignTelemetryTest, PublisherLifecycle) {
  const std::string path = temp_path("hb_publisher");
  std::remove(path.c_str());

  std::atomic<std::uint64_t> produced{0};
  core::worker_heartbeat base;
  base.pid = 7;
  base.first_index = 64;
  base.traces = 32;
  {
    core::heartbeat_publisher publisher(
        path, base, [&] { return produced.load(); },
        std::chrono::milliseconds(20));
    // The constructor writes synchronously before returning.
    auto hb = core::read_heartbeat(path);
    ASSERT_TRUE(hb.has_value());
    EXPECT_EQ(hb->state, "starting");
    EXPECT_EQ(hb->first_index, 64u);

    produced.store(17);
    // Wait (bounded) for a periodic re-stamp carrying the new count.
    for (int i = 0; i < 100; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      hb = core::read_heartbeat(path);
      if (hb && hb->state == "running" && hb->produced == 17) {
        break;
      }
    }
    ASSERT_TRUE(hb.has_value());
    EXPECT_EQ(hb->state, "running");
    EXPECT_EQ(hb->produced, 17u);

    publisher.finish("done");
    hb = core::read_heartbeat(path);
    ASSERT_TRUE(hb.has_value());
    EXPECT_EQ(hb->state, "done");
  }
  // finish() already ran: the destructor must not overwrite "done".
  EXPECT_EQ(core::read_heartbeat(path)->state, "done");
  std::remove(path.c_str());
}

TEST_F(CampaignTelemetryTest, PublisherDestructorMarksFailed) {
  const std::string path = temp_path("hb_failed");
  std::remove(path.c_str());
  {
    core::heartbeat_publisher publisher(path, core::worker_heartbeat{},
                                        nullptr,
                                        std::chrono::milliseconds(20));
    // Leaving scope without finish() — the unwind path of a throwing
    // worker.
  }
  const auto hb = core::read_heartbeat(path);
  ASSERT_TRUE(hb.has_value());
  EXPECT_EQ(hb->state, "failed");
  std::remove(path.c_str());
}

// ------------------------------------------------------------ snapshot

TEST_F(CampaignTelemetryTest, ExportSnapshotFraming) {
  EXPECT_FALSE(core::export_snapshot("worker")) << "no sink => no export";

  const std::string sink = temp_path("snapshot.jsonl");
  std::remove(sink.c_str());
  telem::set_export_path(sink);

  static const telem::counter c{"test.export.count", "items", "test"};
  c.add(3);
  ASSERT_TRUE(core::export_snapshot("worker"));
  ASSERT_TRUE(core::export_snapshot("coordinator"));

  std::ifstream in(sink);
  std::string first;
  std::string second;
  ASSERT_TRUE(std::getline(in, first));
  ASSERT_TRUE(std::getline(in, second));
  EXPECT_NE(first.find("\"event\":\"snapshot\""), std::string::npos);
  EXPECT_NE(first.find("\"role\":\"worker\""), std::string::npos);
  EXPECT_NE(first.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(first.find("\"test.export.count\":3"), std::string::npos);
  EXPECT_NE(second.find("\"role\":\"coordinator\""), std::string::npos);
  std::remove(sink.c_str());
}

// ------------------------------------------------------------ progress

TEST_F(CampaignTelemetryTest, ProgressMeterRatesAndEta) {
  core::progress_meter meter;
  meter.start(100, 10);
  EXPECT_EQ(meter.total(), 100u);
  EXPECT_EQ(meter.produced(), 10u);
  EXPECT_EQ(meter.mean_rate(), 0.0);
  EXPECT_TRUE(std::isinf(meter.eta_seconds()));

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  meter.observe(60);
  EXPECT_EQ(meter.produced(), 60u);
  EXPECT_GT(meter.mean_rate(), 0.0);
  EXPECT_GT(meter.recent_rate(), 0.0);
  EXPECT_GT(meter.eta_seconds(), 0.0);
  EXPECT_FALSE(std::isinf(meter.eta_seconds()));

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  meter.observe(100);
  EXPECT_EQ(meter.eta_seconds(), 0.0);
}

TEST_F(CampaignTelemetryTest, ProgressLineFormat) {
  core::progress_meter meter;
  meter.start(10000, 1234);
  const std::string stalled = meter.format_line(3);
  EXPECT_NE(stalled.find("1234/10000 traces"), std::string::npos) << stalled;
  EXPECT_NE(stalled.find("eta --:--"), std::string::npos) << stalled;
  EXPECT_NE(stalled.find("3 workers live"), std::string::npos) << stalled;

  const std::string solo = meter.format_line(1);
  EXPECT_NE(solo.find("1 worker live"), std::string::npos) << solo;
  EXPECT_EQ(solo.find("workers"), std::string::npos) << solo;
}

// --------------------------------------------------------- bit identity

/// mark(1); eor; add; lsl; mark(2); add — the trace_archive_test
/// program, reused so this pins the same pipeline end to end.
sim::program_image marked_program() {
  asmx::program_builder b;
  b.emit(isa::ins::mark(1));
  b.emit(isa::ins::eor(isa::reg::r1, isa::reg::r2, isa::reg::r3));
  b.emit(isa::ins::add(isa::reg::r4, isa::reg::r1, isa::reg::r2));
  b.emit(isa::ins::lsl(isa::reg::r5, isa::reg::r4, 2));
  b.emit(isa::ins::mark(2));
  b.emit(isa::ins::add(isa::reg::r6, isa::reg::r5, isa::reg::r4));
  return sim::program_image(b.build());
}

core::acquisition_campaign::setup_fn random_registers() {
  return [](std::size_t, util::xoshiro256& rng, sim::backend& pipe,
            std::vector<double>& labels) {
    const std::uint32_t a = rng.next_u32();
    const std::uint32_t b = rng.next_u32();
    pipe.state().set_reg(isa::reg::r2, a);
    pipe.state().set_reg(isa::reg::r3, b);
    labels.assign({static_cast<double>(a & 0xff),
                   static_cast<double>(b & 0xff)});
  };
}

class TelemetryBitIdentity
    : public ::testing::TestWithParam<sim::backend_kind> {
protected:
  void TearDown() override {
    telem::set_enabled(false);
    telem::reset_for_test();
  }
};

INSTANTIATE_TEST_SUITE_P(Backends, TelemetryBitIdentity,
                         ::testing::Values(sim::backend_kind::inorder,
                                           sim::backend_kind::ooo),
                         [](const auto& info) {
                           return info.param == sim::backend_kind::ooo
                                      ? "ooo"
                                      : "inorder";
                         });

TEST_P(TelemetryBitIdentity, ArchiveBytesInvariantToTelemetry) {
  const sim::program_image image = marked_program();
  core::acquisition_config config;
  config.traces = 37;
  config.threads = 2;
  config.seed = 0xa5c1;
  config.averaging = 2;
  config.window = core::campaign_window{1, 2};
  config.backend = GetParam();
  config.uarch = GetParam() == sim::backend_kind::ooo ? sim::cortex_a7_ooo()
                                                      : sim::cortex_a7();
  core::archive_options options;
  options.chunk_traces = 8;

  const std::string off_path = temp_path("telem_off.trc");
  const std::string on_path = temp_path("telem_on.trc");
  std::remove(off_path.c_str());
  std::remove(on_path.c_str());

  telem::set_enabled(false);
  core::archive_acquisition(image, config, random_registers(), off_path,
                            options);

  // Full instrumentation live: spans timing, counters counting.
  telem::set_enabled(true);
  core::archive_acquisition(image, config, random_registers(), on_path,
                            options);

  EXPECT_EQ(file_bytes(on_path), file_bytes(off_path))
      << "telemetry must be write-only with respect to results";

  // And the campaign did flow through the instrumented paths.
  std::uint64_t archived = 0;
  for (const auto& s : telem::snapshot()) {
    if (s.info.name == "archive.records") {
      archived = s.count;
    }
  }
  EXPECT_GE(archived, static_cast<std::uint64_t>(config.traces));

  std::remove(off_path.c_str());
  std::remove(on_path.c_str());
}

} // namespace
} // namespace usca
