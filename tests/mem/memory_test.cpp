#include "mem/memory.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace usca::mem {
namespace {

TEST(Memory, ZeroInitialized) {
  memory m;
  EXPECT_EQ(m.read8(0), 0);
  EXPECT_EQ(m.read32(0x10000), 0u);
}

TEST(Memory, ByteRoundTrip) {
  memory m;
  m.write8(100, 0xab);
  EXPECT_EQ(m.read8(100), 0xab);
  EXPECT_EQ(m.read8(101), 0);
}

TEST(Memory, WordLittleEndian) {
  memory m;
  m.write32(0x1000, 0x11223344);
  EXPECT_EQ(m.read8(0x1000), 0x44);
  EXPECT_EQ(m.read8(0x1003), 0x11);
  EXPECT_EQ(m.read32(0x1000), 0x11223344u);
}

TEST(Memory, HalfwordRoundTrip) {
  memory m;
  m.write16(0x2000, 0xbeef);
  EXPECT_EQ(m.read16(0x2000), 0xbeef);
  EXPECT_EQ(m.read8(0x2000), 0xef);
}

TEST(Memory, UnalignedAccessesThrow) {
  memory m;
  EXPECT_THROW(m.read32(2), util::simulation_error);
  EXPECT_THROW(m.write32(1, 0), util::simulation_error);
  EXPECT_THROW(m.read16(1), util::simulation_error);
  EXPECT_THROW(m.write16(3, 0), util::simulation_error);
}

TEST(Memory, CrossPageAccess) {
  memory m;
  const std::uint32_t boundary = memory::page_size - 2;
  m.write32(boundary - 2, 0xa1b2c3d4); // fully inside page 0
  m.write8(memory::page_size, 0x99);   // first byte of page 1
  EXPECT_EQ(m.read32(boundary - 2), 0xa1b2c3d4u);
  EXPECT_EQ(m.read8(memory::page_size), 0x99);
}

TEST(Memory, BulkLoad) {
  memory m;
  m.load(0x10000, {1, 2, 3, 4});
  EXPECT_EQ(m.read32(0x10000), 0x04030201u);
}

TEST(Memory, ContainingWordForSubwordAccess) {
  memory m;
  m.write32(0x3000, 0xaabbccdd);
  // The MDR observes the full word regardless of which byte is addressed.
  EXPECT_EQ(m.containing_word(0x3001), 0xaabbccddu);
  EXPECT_EQ(m.containing_word(0x3003), 0xaabbccddu);
}

TEST(Memory, ClearDropsContents) {
  memory m;
  m.write32(0x1000, 5);
  m.clear();
  EXPECT_EQ(m.read32(0x1000), 0u);
}

TEST(Memory, ResetZeroesEveryTouchedPageInPlace) {
  memory m;
  m.write32(0x1000, 0xdeadbeef);
  m.write8(0x10000, 0x42);                 // a second, distant page
  m.write16(memory::page_size - 2, 0x1234); // page-boundary straddle setup
  m.reset();
  // Observationally a fresh memory: all previously written locations read
  // zero, and new writes still work.
  EXPECT_EQ(m.read32(0x1000), 0u);
  EXPECT_EQ(m.read8(0x10000), 0u);
  EXPECT_EQ(m.read16(memory::page_size - 2), 0u);
  m.write32(0x1000, 7);
  EXPECT_EQ(m.read32(0x1000), 7u);
}

} // namespace
} // namespace usca::mem
