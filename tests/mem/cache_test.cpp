#include "mem/cache.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace usca::mem {
namespace {

cache_config small_config() {
  cache_config c;
  c.size_bytes = 256;
  c.line_bytes = 32;
  c.ways = 2;
  c.miss_penalty = 10;
  return c;
}

TEST(Cache, FirstAccessMissesThenHits) {
  cache c(small_config());
  EXPECT_EQ(c.access(0x100), 10);
  EXPECT_EQ(c.access(0x100), 0);
  EXPECT_EQ(c.access(0x11f), 0); // same 32-byte line
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, LruEviction) {
  cache c(small_config()); // 4 sets x 2 ways
  // Three lines mapping to the same set (stride = line * sets = 128).
  c.access(0x000);
  c.access(0x080);
  c.access(0x100); // evicts 0x000 (LRU)
  EXPECT_EQ(c.access(0x080), 0);
  EXPECT_EQ(c.access(0x000), 10); // was evicted
}

TEST(Cache, LruUpdatedOnHit) {
  cache c(small_config());
  c.access(0x000);
  c.access(0x080);
  c.access(0x000);  // refresh 0x000
  c.access(0x100);  // evicts 0x080 now
  EXPECT_EQ(c.access(0x000), 0);
  EXPECT_EQ(c.access(0x080), 10);
}

TEST(Cache, WarmMakesRegionHit) {
  cache c(small_config());
  c.warm(0x40, 64);
  EXPECT_TRUE(c.would_hit(0x40));
  EXPECT_TRUE(c.would_hit(0x7f));
  EXPECT_EQ(c.access(0x40), 0);
}

TEST(Cache, WouldHitDoesNotMutate) {
  cache c(small_config());
  EXPECT_FALSE(c.would_hit(0x40));
  EXPECT_FALSE(c.would_hit(0x40));
  EXPECT_EQ(c.hits() + c.misses(), 0u);
}

TEST(Cache, DisabledCacheIsFree) {
  cache_config cfg = small_config();
  cfg.enabled = false;
  cache c(cfg);
  EXPECT_EQ(c.access(0x123), 0);
  EXPECT_TRUE(c.would_hit(0x5555));
}

TEST(Cache, ResetClearsState) {
  cache c(small_config());
  c.access(0x100);
  c.reset();
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_FALSE(c.would_hit(0x100));
}

TEST(Cache, RejectsBadGeometry) {
  cache_config cfg;
  cfg.line_bytes = 48; // not a power of two
  EXPECT_THROW(cache{cfg}, util::usca_error);
  cache_config zero_ways;
  zero_ways.ways = 0;
  EXPECT_THROW(cache{zero_ways}, util::usca_error);
}

TEST(Cache, CortexA7GeometryWorks) {
  cache_config cfg; // defaults: 32 KiB, 4-way, 64 B lines
  cache c(cfg);
  c.warm(0, 32 * 1024);
  EXPECT_TRUE(c.would_hit(16 * 1024));
  EXPECT_EQ(c.misses(), 512u); // 32 KiB / 64 B
}

} // namespace
} // namespace usca::mem
