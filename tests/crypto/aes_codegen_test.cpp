#include "crypto/aes_codegen.h"

#include <gtest/gtest.h>

#include "sim/functional_executor.h"
#include "sim/pipeline.h"
#include "util/rng.h"

namespace usca::crypto {
namespace {

aes_block random_block(util::xoshiro256& rng) {
  aes_block b;
  for (auto& byte : b) {
    byte = rng.next_u8();
  }
  return b;
}

TEST(AesCodegen, GeneratedProgramIsWellFormed) {
  const aes_program_layout layout = generate_aes128_program();
  EXPECT_GT(layout.prog.code.size(), 1000u);
  EXPECT_GE(layout.prog.data.size(), 256u + 16 + 176);
  EXPECT_NE(layout.state_addr, 0u);
  EXPECT_NE(layout.sbox_addr, 0u);
  // The S-box is embedded in the data image.
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(layout.prog
                  .data[layout.sbox_addr - layout.prog.data_base +
                        static_cast<std::size_t>(i)],
              aes_sbox()[static_cast<std::size_t>(i)]);
  }
}

TEST(AesCodegen, FunctionalExecutorMatchesGoldenFips197) {
  const aes_program_layout layout = generate_aes128_program();
  const aes_key key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                       0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
  const aes_block pt = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                        0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  sim::functional_executor exec(layout.prog);
  install_aes_inputs(exec.memory(), layout, expand_key(key), pt);
  exec.run();
  EXPECT_EQ(read_aes_state(exec.memory(), layout), encrypt_block(pt, key));
}

TEST(AesCodegen, FunctionalExecutorMatchesGoldenOnRandomInputs) {
  const aes_program_layout layout = generate_aes128_program();
  util::xoshiro256 rng(55);
  for (int i = 0; i < 20; ++i) {
    const aes_key key = random_block(rng);
    const aes_block pt = random_block(rng);
    sim::functional_executor exec(layout.prog);
    install_aes_inputs(exec.memory(), layout, expand_key(key), pt);
    exec.run();
    ASSERT_EQ(read_aes_state(exec.memory(), layout), encrypt_block(pt, key))
        << "iteration " << i;
  }
}

TEST(AesCodegen, PipelineMatchesGolden) {
  const aes_program_layout layout = generate_aes128_program();
  util::xoshiro256 rng(77);
  for (int i = 0; i < 3; ++i) {
    const aes_key key = random_block(rng);
    const aes_block pt = random_block(rng);
    sim::pipeline pipe(layout.prog, sim::cortex_a7());
    pipe.set_record_activity(false);
    install_aes_inputs(pipe.memory(), layout, expand_key(key), pt);
    pipe.warm_caches();
    pipe.run();
    ASSERT_EQ(read_aes_state(pipe.memory(), layout), encrypt_block(pt, key))
        << "iteration " << i;
  }
}

TEST(AesCodegen, BranchyVariantMatchesGolden) {
  const aes_program_layout layout = generate_aes128_branchy_program();
  util::xoshiro256 rng(99);
  for (int i = 0; i < 10; ++i) {
    const aes_key key = random_block(rng);
    const aes_block pt = random_block(rng);
    sim::functional_executor exec(layout.prog);
    install_aes_inputs(exec.memory(), layout, expand_key(key), pt);
    exec.run();
    ASSERT_EQ(read_aes_state(exec.memory(), layout), encrypt_block(pt, key))
        << "iteration " << i;
  }
}

TEST(AesCodegen, PerRoundMarksCoverAllTenRounds) {
  const aes_program_layout layout = generate_aes128_program();
  sim::pipeline pipe(layout.prog, sim::cortex_a7());
  pipe.set_record_activity(false);
  install_aes_inputs(pipe.memory(), layout, expand_key(aes_key{}),
                     aes_block{});
  pipe.warm_caches();
  pipe.run();
  // Every round/phase boundary is stamped exactly once, in order.
  std::uint64_t prev = 0;
  for (int round = 1; round <= 10; ++round) {
    for (const auto phase :
         {aes_round_phase::sub_bytes, aes_round_phase::shift_rows,
          aes_round_phase::mix_columns, aes_round_phase::add_round_key}) {
      if (round == 10 && phase == aes_round_phase::mix_columns) {
        continue; // the final round has no MixColumns
      }
      const std::uint16_t id = aes_round_phase_mark(round, phase);
      std::size_t hits = 0;
      std::uint64_t cycle = 0;
      for (const auto& m : pipe.marks()) {
        if (m.id == id) {
          ++hits;
          cycle = m.cycle;
        }
      }
      ASSERT_EQ(hits, 1u) << "round " << round << " phase "
                          << static_cast<int>(phase);
      EXPECT_GT(cycle, prev);
      prev = cycle;
    }
  }
  // Round-1 phases resolve to the legacy Figure 3 ids.
  EXPECT_EQ(aes_round_phase_mark(1, aes_round_phase::sub_bytes),
            mark_sb1_end);
  EXPECT_EQ(aes_round_phase_mark(1, aes_round_phase::mix_columns),
            mark_round1_end);
  EXPECT_EQ(aes_round_phase_mark(10, aes_round_phase::add_round_key),
            mark_encrypt_end);
  EXPECT_EQ(aes_round_phase_mark(0, aes_round_phase::add_round_key),
            mark_ark0_end);
}

TEST(AesCodegen, MarksDelimitTheFirstRound) {
  const aes_program_layout layout = generate_aes128_program();
  sim::pipeline pipe(layout.prog, sim::cortex_a7());
  pipe.set_record_activity(false);
  install_aes_inputs(pipe.memory(), layout, expand_key(aes_key{}),
                     aes_block{});
  pipe.warm_caches();
  pipe.run();
  std::uint64_t begin = 0;
  std::uint64_t round1 = 0;
  std::uint64_t end = 0;
  for (const auto& m : pipe.marks()) {
    if (m.id == mark_encrypt_begin) {
      begin = m.cycle;
    } else if (m.id == mark_round1_end) {
      round1 = m.cycle;
    } else if (m.id == mark_encrypt_end) {
      end = m.cycle;
    }
  }
  EXPECT_GT(round1, begin);
  EXPECT_GT(end, round1);
  // The first round (ARK + SB + ShR + MC) is roughly a tenth of the whole
  // encryption.
  EXPECT_LT(round1 - begin, (end - begin) / 5);
}

TEST(AesCodegen, DualIssueOccursDuringEncryption) {
  const aes_program_layout layout = generate_aes128_program();
  sim::pipeline pipe(layout.prog, sim::cortex_a7());
  pipe.set_record_activity(false);
  install_aes_inputs(pipe.memory(), layout, expand_key(aes_key{}),
                     aes_block{});
  pipe.warm_caches();
  pipe.run();
  EXPECT_GT(pipe.dual_issue_pairs(), 100u);
  // The byte-oriented reference AES is dominated by dependent load chains:
  // overall CPI sits above 1 but well under the serial bound.
  const double cpi = static_cast<double>(pipe.cycles()) /
                     static_cast<double>(pipe.instructions_issued());
  EXPECT_LT(cpi, 2.0);
}

TEST(AesCodegen, ScalarConfigurationIsSlower) {
  const aes_program_layout layout = generate_aes128_program();
  const auto run_with = [&](const sim::micro_arch_config& config) {
    sim::pipeline pipe(layout.prog, config);
    pipe.set_record_activity(false);
    install_aes_inputs(pipe.memory(), layout, expand_key(aes_key{}),
                       aes_block{});
    pipe.warm_caches();
    pipe.run();
    return pipe.cycles();
  };
  EXPECT_GT(run_with(sim::cortex_a7_scalar()), run_with(sim::cortex_a7()));
}

} // namespace
} // namespace usca::crypto
