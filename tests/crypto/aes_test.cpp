#include "crypto/aes128.h"

#include <gtest/gtest.h>

namespace usca::crypto {
namespace {

aes_block block_from(const std::uint8_t (&bytes)[16]) {
  aes_block b;
  std::copy(std::begin(bytes), std::end(bytes), b.begin());
  return b;
}

TEST(Aes, SboxSpotValues) {
  const auto& sbox = aes_sbox();
  EXPECT_EQ(sbox[0x00], 0x63);
  EXPECT_EQ(sbox[0x01], 0x7c);
  EXPECT_EQ(sbox[0x53], 0xed);
  EXPECT_EQ(sbox[0xff], 0x16);
}

TEST(Aes, SboxIsAPermutation) {
  const auto& sbox = aes_sbox();
  std::array<bool, 256> seen{};
  for (const std::uint8_t v : sbox) {
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Aes, XtimeKnownValues) {
  EXPECT_EQ(xtime(0x57), 0xae);
  EXPECT_EQ(xtime(0xae), 0x47); // wraps through the reduction polynomial
  EXPECT_EQ(xtime(0x80), 0x1b);
  EXPECT_EQ(xtime(0x00), 0x00);
}

TEST(Aes, KeyExpansionFips197VectorA) {
  // FIPS-197 Appendix A.1 key expansion for 2b7e1516...
  const aes_key key = block_from({0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2,
                                  0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
                                  0x4f, 0x3c});
  const aes_round_keys rk = expand_key(key);
  // w4 = a0fafe17
  EXPECT_EQ(rk[16], 0xa0);
  EXPECT_EQ(rk[17], 0xfa);
  EXPECT_EQ(rk[18], 0xfe);
  EXPECT_EQ(rk[19], 0x17);
  // w43 = b6630ca6 (last word)
  EXPECT_EQ(rk[172], 0xb6);
  EXPECT_EQ(rk[173], 0x63);
  EXPECT_EQ(rk[174], 0x0c);
  EXPECT_EQ(rk[175], 0xa6);
}

TEST(Aes, EncryptFips197AppendixB) {
  const aes_key key = block_from({0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2,
                                  0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
                                  0x4f, 0x3c});
  const aes_block pt = block_from({0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30,
                                   0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                                   0x07, 0x34});
  const aes_block expected = block_from({0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc,
                                         0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97,
                                         0x19, 0x6a, 0x0b, 0x32});
  EXPECT_EQ(encrypt_block(pt, key), expected);
}

TEST(Aes, EncryptFips197AppendixC) {
  const aes_key key = block_from({0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06,
                                  0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
                                  0x0e, 0x0f});
  const aes_block pt = block_from({0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66,
                                   0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
                                   0xee, 0xff});
  const aes_block expected = block_from({0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b,
                                         0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80,
                                         0x70, 0xb4, 0xc5, 0x5a});
  EXPECT_EQ(encrypt_block(pt, key), expected);
}

TEST(Aes, Round1SubbytesMatchesDefinition) {
  const aes_key key = block_from({0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2,
                                  0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
                                  0x4f, 0x3c});
  const aes_block pt = block_from({0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30,
                                   0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                                   0x07, 0x34});
  const aes_block sb = round1_subbytes(pt, key);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(sb[i], aes_sbox()[pt[i] ^ key[i]]);
  }
  // FIPS-197 Appendix B round 1 after SubBytes starts with d4.
  EXPECT_EQ(sb[0], 0xd4);
}

TEST(Aes, SubbytesHypothesisConsistent) {
  EXPECT_EQ(subbytes_hypothesis(0x32, 0x2b), aes_sbox()[0x32 ^ 0x2b]);
}

} // namespace
} // namespace usca::crypto
