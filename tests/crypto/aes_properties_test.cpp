// Statistical/structural properties of the AES implementation beyond the
// FIPS vectors: avalanche behaviour, key-schedule structure, and the
// equivalence of the generated code across many random inputs.
#include <gtest/gtest.h>

#include "crypto/aes128.h"
#include "util/bitops.h"
#include "util/rng.h"

namespace usca::crypto {
namespace {

aes_block random_block(util::xoshiro256& rng) {
  aes_block b;
  for (auto& byte : b) {
    byte = rng.next_u8();
  }
  return b;
}

int block_distance(const aes_block& a, const aes_block& b) {
  int bits = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    bits += util::hamming_weight(static_cast<std::uint32_t>(a[i] ^ b[i]));
  }
  return bits;
}

TEST(AesProperties, PlaintextAvalanche) {
  util::xoshiro256 rng(7);
  double total = 0.0;
  const int experiments = 100;
  for (int e = 0; e < experiments; ++e) {
    const aes_key key = random_block(rng);
    aes_block pt = random_block(rng);
    const aes_block ct = encrypt_block(pt, key);
    // Flip one random bit of the plaintext.
    pt[rng.bounded(16)] ^= static_cast<std::uint8_t>(1u << rng.bounded(8));
    const aes_block ct2 = encrypt_block(pt, key);
    total += block_distance(ct, ct2);
  }
  // Expect ~64 of 128 bits to flip on average.
  EXPECT_NEAR(total / experiments, 64.0, 4.0);
}

TEST(AesProperties, KeyAvalanche) {
  util::xoshiro256 rng(8);
  double total = 0.0;
  const int experiments = 100;
  for (int e = 0; e < experiments; ++e) {
    aes_key key = random_block(rng);
    const aes_block pt = random_block(rng);
    const aes_block ct = encrypt_block(pt, key);
    key[rng.bounded(16)] ^= static_cast<std::uint8_t>(1u << rng.bounded(8));
    total += block_distance(ct, encrypt_block(pt, key));
  }
  EXPECT_NEAR(total / experiments, 64.0, 4.0);
}

TEST(AesProperties, DistinctPlaintextsDistinctCiphertexts) {
  util::xoshiro256 rng(9);
  const aes_key key = random_block(rng);
  const aes_block a = random_block(rng);
  aes_block b = a;
  b[5] ^= 0x40;
  EXPECT_NE(encrypt_block(a, key), encrypt_block(b, key));
}

TEST(AesProperties, KeyScheduleFirstRoundIsKey) {
  util::xoshiro256 rng(10);
  const aes_key key = random_block(rng);
  const aes_round_keys rk = expand_key(key);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(rk[i], key[i]);
  }
}

TEST(AesProperties, KeyScheduleRecurrence) {
  // w[i] = w[i-4] ^ f(w[i-1]); for i not divisible by 4, f = identity.
  util::xoshiro256 rng(11);
  const aes_key key = random_block(rng);
  const aes_round_keys rk = expand_key(key);
  for (std::size_t word = 4; word < 44; ++word) {
    if (word % 4 == 0) {
      continue;
    }
    for (std::size_t b = 0; b < 4; ++b) {
      EXPECT_EQ(rk[4 * word + b],
                rk[4 * (word - 4) + b] ^ rk[4 * (word - 1) + b])
          << "word " << word;
    }
  }
}

TEST(AesProperties, XtimeMatchesFieldDoubling) {
  // xtime distributes over xor and 8 applications of xtime equal
  // multiplication by {02}^8 = x^8 = x^4+x^3+x+1 (mod the AES polynomial).
  for (int v = 0; v < 256; ++v) {
    const auto byte = static_cast<std::uint8_t>(v);
    EXPECT_EQ(xtime(static_cast<std::uint8_t>(byte ^ 0x35)),
              static_cast<std::uint8_t>(xtime(byte) ^ xtime(0x35)));
  }
}

TEST(AesProperties, Round1SubbytesBijectiveInKey) {
  // For a fixed plaintext byte, the hypothesis map key -> sbox[pt ^ key]
  // is a bijection: CPA key ranking depends on this.
  std::array<bool, 256> seen{};
  for (int guess = 0; guess < 256; ++guess) {
    const std::uint8_t out =
        subbytes_hypothesis(0xa5, static_cast<std::uint8_t>(guess));
    EXPECT_FALSE(seen[out]);
    seen[out] = true;
  }
}

} // namespace
} // namespace usca::crypto
