// Reset-equivalence suite: a reused pipeline restored with reset() (or
// moved to a new program with rebind()) must be bit-identical in every
// observable — timing, marks, activity events, memory contents and the
// synthesized power — to a freshly constructed pipeline.  This is the
// contract the zero-reallocation campaign hot path rests on: run()
// workers reuse one pipeline per shard while produce() constructs fresh
// ones, and the two must agree exactly.
#include <gtest/gtest.h>

#include <vector>

#include "crypto/aes_codegen.h"
#include "power/synthesizer.h"
#include "sim/pipeline.h"
#include "sim/program_image.h"
#include "util/rng.h"

namespace usca {
namespace {

struct run_observation {
  std::uint64_t cycles = 0;
  std::uint64_t issued = 0;
  std::uint64_t dual_pairs = 0;
  std::vector<sim::pipeline::mark_stamp> marks;
  sim::activity_trace activity;
  crypto::aes_block ciphertext{};
  power::trace clean_power;
};

const crypto::aes_key kKey = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                              0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                              0x09, 0xcf, 0x4f, 0x3c};

/// Runs one AES encryption on `pipe` (assumed freshly constructed or
/// reset) and captures everything observable.
run_observation run_aes(sim::pipeline& pipe,
                        const crypto::aes_program_layout& layout,
                        const crypto::aes_round_keys& rk,
                        const crypto::aes_block& pt) {
  crypto::install_aes_inputs(pipe.memory(), layout, rk, pt);
  pipe.warm_caches();
  pipe.run();

  run_observation obs;
  obs.cycles = pipe.cycles();
  obs.issued = pipe.instructions_issued();
  obs.dual_pairs = pipe.dual_issue_pairs();
  obs.marks = pipe.marks();
  obs.activity = pipe.activity();
  obs.ciphertext = crypto::read_aes_state(pipe.memory(), layout);
  power::trace_synthesizer synth(power::synthesis_config{}, 1);
  obs.clean_power = synth.synthesize_clean(
      pipe.activity(), 0, static_cast<std::uint32_t>(pipe.cycles() + 4));
  return obs;
}

void expect_identical(const run_observation& fresh,
                      const run_observation& reused) {
  EXPECT_EQ(fresh.cycles, reused.cycles);
  EXPECT_EQ(fresh.issued, reused.issued);
  EXPECT_EQ(fresh.dual_pairs, reused.dual_pairs);
  EXPECT_EQ(fresh.ciphertext, reused.ciphertext);

  ASSERT_EQ(fresh.marks.size(), reused.marks.size());
  for (std::size_t i = 0; i < fresh.marks.size(); ++i) {
    EXPECT_EQ(fresh.marks[i].id, reused.marks[i].id);
    EXPECT_EQ(fresh.marks[i].cycle, reused.marks[i].cycle);
    EXPECT_EQ(fresh.marks[i].dual_pairs, reused.marks[i].dual_pairs);
  }

  ASSERT_EQ(fresh.activity.size(), reused.activity.size());
  for (std::size_t i = 0; i < fresh.activity.size(); ++i) {
    EXPECT_EQ(fresh.activity[i].cycle, reused.activity[i].cycle);
    EXPECT_EQ(fresh.activity[i].comp, reused.activity[i].comp);
    EXPECT_EQ(fresh.activity[i].lane, reused.activity[i].lane);
    EXPECT_EQ(fresh.activity[i].toggles, reused.activity[i].toggles);
  }

  ASSERT_EQ(fresh.clean_power.size(), reused.clean_power.size());
  for (std::size_t s = 0; s < fresh.clean_power.size(); ++s) {
    // Bit-identical, not approximately equal.
    EXPECT_EQ(fresh.clean_power[s], reused.clean_power[s]) << "sample " << s;
  }
}

void check_reset_equivalence(const sim::micro_arch_config& config) {
  const crypto::aes_program_layout layout = crypto::generate_aes128_program();
  const crypto::aes_round_keys rk = crypto::expand_key(kKey);
  const sim::program_image image(layout.prog);

  util::xoshiro256 rng(0xfee1);
  sim::pipeline reused(image, config);
  for (int trial = 0; trial < 3; ++trial) {
    crypto::aes_block pt;
    for (auto& b : pt) {
      b = rng.next_u8();
    }
    sim::pipeline fresh(image, config);
    const run_observation from_fresh = run_aes(fresh, layout, rk, pt);

    reused.reset();
    const run_observation from_reused = run_aes(reused, layout, rk, pt);
    expect_identical(from_fresh, from_reused);
  }
}

TEST(PipelineReset, AesBitIdenticalOnCortexA7) {
  check_reset_equivalence(sim::cortex_a7());
}

TEST(PipelineReset, AesBitIdenticalOnScalarAblation) {
  check_reset_equivalence(sim::cortex_a7_scalar());
}

TEST(PipelineReset, AesBitIdenticalOnLeakageAblatedConfig) {
  // Transparent nops, no align buffer, non-holding ALU latches: the
  // ablations that exercise the nop/latch reset paths of issue().
  sim::micro_arch_config ablated = sim::cortex_a7();
  ablated.nop_drives_zero_operands = false;
  ablated.nop_zeroes_wb_bus = false;
  ablated.alu_latch_holds_on_idle = false;
  ablated.has_align_buffer = false;
  check_reset_equivalence(ablated);
}

TEST(PipelineReset, SharedImageIsNotCopiedPerPipeline) {
  const crypto::aes_program_layout layout = crypto::generate_aes128_program();
  const sim::program_image image(layout.prog);
  sim::pipeline a(image, sim::cortex_a7());
  sim::pipeline b(image, sim::cortex_a7());
  // Both pipelines must alias the image's single program copy.
  EXPECT_EQ(&image.prog(), &a.program());
  EXPECT_EQ(&image.prog(), &b.program());
}

TEST(PipelineReset, RebindMatchesFreshConstructionOnNewProgram) {
  asmx::program_builder first;
  first.emit(isa::ins::mark(1));
  first.emit(isa::ins::add(isa::reg::r1, isa::reg::r2, isa::reg::r3));
  first.emit(isa::ins::mark(2));
  asmx::program_builder second;
  second.emit(isa::ins::mark(1));
  second.emit(isa::ins::eor(isa::reg::r4, isa::reg::r5, isa::reg::r6));
  second.emit(isa::ins::lsl(isa::reg::r7, isa::reg::r4, 3));
  second.emit(isa::ins::mark(2));

  const sim::program_image image_b(second.build());
  sim::pipeline fresh(image_b, sim::cortex_a7());
  fresh.state().set_reg(isa::reg::r5, 0x1234);
  fresh.warm_caches();
  fresh.run();

  sim::pipeline rebound(sim::program_image(first.build()), sim::cortex_a7());
  rebound.warm_caches();
  rebound.run();
  rebound.rebind(image_b);
  rebound.state().set_reg(isa::reg::r5, 0x1234);
  rebound.warm_caches();
  rebound.run();

  EXPECT_EQ(fresh.cycles(), rebound.cycles());
  EXPECT_EQ(fresh.state().reg(isa::reg::r7), rebound.state().reg(isa::reg::r7));
  ASSERT_EQ(fresh.activity().size(), rebound.activity().size());
  for (std::size_t i = 0; i < fresh.activity().size(); ++i) {
    EXPECT_EQ(fresh.activity()[i].cycle, rebound.activity()[i].cycle);
    EXPECT_EQ(fresh.activity()[i].toggles, rebound.activity()[i].toggles);
  }
}

TEST(PipelineReset, ActivityCutoffPreservesWindowDropsTail) {
  const crypto::aes_program_layout layout = crypto::generate_aes128_program();
  const crypto::aes_round_keys rk = crypto::expand_key(kKey);
  const sim::program_image image(layout.prog);

  sim::pipeline full(image, sim::cortex_a7());
  crypto::install_aes_inputs(full.memory(), layout, rk, crypto::aes_block{});
  full.warm_caches();
  full.run();

  sim::pipeline cut(image, sim::cortex_a7());
  cut.set_activity_cutoff_mark(crypto::mark_round1_end);
  crypto::install_aes_inputs(cut.memory(), layout, rk, crypto::aes_block{});
  cut.warm_caches();
  cut.run();

  // Timing and marks are unaffected by the cutoff.
  EXPECT_EQ(full.cycles(), cut.cycles());
  ASSERT_EQ(full.marks().size(), cut.marks().size());

  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  for (const auto& m : full.marks()) {
    if (m.id == crypto::mark_encrypt_begin) {
      begin = m.cycle;
    } else if (m.id == crypto::mark_round1_end) {
      end = m.cycle;
    }
  }
  ASSERT_LT(begin, end);

  // The recorded events are a strict prefix...
  ASSERT_LT(cut.activity().size(), full.activity().size());
  for (std::size_t i = 0; i < cut.activity().size(); ++i) {
    EXPECT_EQ(full.activity()[i].cycle, cut.activity()[i].cycle);
    EXPECT_EQ(full.activity()[i].comp, cut.activity()[i].comp);
    EXPECT_EQ(full.activity()[i].toggles, cut.activity()[i].toggles);
  }
  // ...and the synthesized window is bit-identical.
  power::trace_synthesizer synth(power::synthesis_config{}, 9);
  const power::trace from_full = synth.synthesize_clean(
      full.activity(), static_cast<std::uint32_t>(begin),
      static_cast<std::uint32_t>(end));
  const power::trace from_cut = synth.synthesize_clean(
      cut.activity(), static_cast<std::uint32_t>(begin),
      static_cast<std::uint32_t>(end));
  ASSERT_EQ(from_full.size(), from_cut.size());
  for (std::size_t s = 0; s < from_full.size(); ++s) {
    EXPECT_EQ(from_full[s], from_cut[s]);
  }
  // clear + reset restores full recording.
  cut.clear_activity_cutoff_mark();
  cut.reset();
  crypto::install_aes_inputs(cut.memory(), layout, rk, crypto::aes_block{});
  cut.warm_caches();
  cut.run();
  EXPECT_EQ(full.activity().size(), cut.activity().size());
}

} // namespace
} // namespace usca
