// Tests of the micro-architectural leakage event stream: every effect the
// paper attributes to a specific structure must be visible (and correctly
// sized) in the pipeline's activity trace.
#include "sim/pipeline.h"

#include <gtest/gtest.h>

#include "asmx/program.h"
#include "util/bitops.h"

namespace usca::sim {
namespace {

using isa::instruction;
using isa::reg;
namespace mk = isa::ins;

bool has_event(const activity_trace& trace, component comp, int toggles) {
  for (const activity_event& ev : trace) {
    if (ev.comp == comp && ev.toggles == toggles) {
      return true;
    }
  }
  return false;
}

int count_events(const activity_trace& trace, component comp) {
  int n = 0;
  for (const activity_event& ev : trace) {
    n += ev.comp == comp ? 1 : 0;
  }
  return n;
}

pipeline run_program(asmx::program prog, micro_arch_config config,
                     const std::vector<std::pair<reg, std::uint32_t>>& regs) {
  pipeline pipe(std::move(prog), config);
  for (const auto& [r, v] : regs) {
    pipe.state().set_reg(r, v);
  }
  pipe.warm_caches();
  pipe.run();
  return pipe;
}

TEST(PipelineActivity, NopZeroizesOperandBusesExposingHammingWeight) {
  asmx::program_builder b;
  b.emit(mk::mov(reg::r1, reg::r2));
  b.emit(mk::nop());
  b.emit(mk::mov(reg::r3, reg::r4));
  const std::uint32_t rb = 0xffff00ff; // HW 24
  const std::uint32_t rd = 0x000000f0; // HW 4
  auto pipe = run_program(b.build(), cortex_a7(),
                          {{reg::r2, rb}, {reg::r4, rd}});
  // Bus: 0 -> rB -> 0 -> rD: HW(rB) twice, HW(rD) once (each as HD vs 0).
  EXPECT_TRUE(has_event(pipe.activity(), component::is_ex_bus,
                        util::hamming_weight(rb)));
  EXPECT_TRUE(has_event(pipe.activity(), component::is_ex_bus,
                        util::hamming_weight(rd)));
}

TEST(PipelineActivity, AluLatchesKeepStaleOperandsAcrossNops) {
  asmx::program_builder b;
  b.emit(mk::mov(reg::r1, reg::r2));
  b.emit(mk::nop());
  b.emit(mk::mov(reg::r3, reg::r4));
  const std::uint32_t rb = 0x0f0f0f0f;
  const std::uint32_t rd = 0xf0f0f0f0;
  auto pipe = run_program(b.build(), cortex_a7(),
                          {{reg::r2, rb}, {reg::r4, rd}});
  // The ALU0 op2 latch transitions rB -> rD directly: HD(rB,rD) = 32.
  EXPECT_TRUE(has_event(pipe.activity(), component::alu_in_latch,
                        util::hamming_distance(rb, rd)));
}

TEST(PipelineActivity, LatchZeroizeAblationRemovesCrossNopCombination) {
  micro_arch_config config = cortex_a7();
  config.alu_latch_holds_on_idle = false;
  asmx::program_builder b;
  b.emit(mk::mov(reg::r1, reg::r2));
  b.emit(mk::nop());
  b.emit(mk::mov(reg::r3, reg::r4));
  const std::uint32_t rb = 0x0f0f0f0f;
  const std::uint32_t rd = 0xf0f070f0; // HD(rb,rd)=31, distinct from HWs
  auto pipe = run_program(b.build(), config,
                          {{reg::r2, rb}, {reg::r4, rd}});
  EXPECT_FALSE(has_event(pipe.activity(), component::alu_in_latch,
                         util::hamming_distance(rb, rd)));
}

TEST(PipelineActivity, WritebackBusZeroedByNopExposesResult) {
  asmx::program_builder b;
  b.emit(mk::add(reg::r1, reg::r2, reg::r3));
  b.pad_nops(4);
  const std::uint32_t rb = 0x10203040;
  const std::uint32_t rc = 0x01020304;
  auto pipe = run_program(b.build(), cortex_a7(),
                          {{reg::r2, rb}, {reg::r3, rc}});
  const int hw_result = util::hamming_weight(rb + rc);
  // Result asserted on the WB bus, then zeroed by the following nop.
  int seen = 0;
  for (const activity_event& ev : pipe.activity()) {
    if (ev.comp == component::wb_bus && ev.toggles == hw_result) {
      ++seen;
    }
  }
  EXPECT_GE(seen, 2); // 0 -> result -> 0
}

TEST(PipelineActivity, WbZeroizeAblationRemovesBorderEffect) {
  micro_arch_config config = cortex_a7();
  config.nop_zeroes_wb_bus = false;
  asmx::program_builder b;
  b.emit(mk::add(reg::r1, reg::r2, reg::r3));
  b.pad_nops(4);
  auto pipe = run_program(b.build(), config,
                          {{reg::r2, 0x10203040}, {reg::r3, 0x01020304}});
  // Only the initial 0 -> result transition remains.
  EXPECT_EQ(count_events(pipe.activity(), component::wb_bus), 1);
}

TEST(PipelineActivity, MdrCombinesConsecutiveLoadedWords) {
  asmx::program_builder b;
  const std::uint32_t a1 = b.data_word(0xaaaa5555);
  const std::uint32_t a2 = b.data_word(0x0000ffff);
  b.emit(mk::ldr(reg::r1, reg::r8));
  b.emit(mk::ldr(reg::r2, reg::r9));
  auto pipe = run_program(b.build(), cortex_a7(),
                          {{reg::r8, a1}, {reg::r9, a2}});
  EXPECT_TRUE(has_event(pipe.activity(), component::mdr,
                        util::hamming_distance(0xaaaa5555, 0x0000ffff)));
}

TEST(PipelineActivity, MdrSeesFullWordForSubwordLoads) {
  asmx::program_builder b;
  const std::uint32_t a1 = b.data_word(0xffffffff);
  const std::uint32_t a2 = b.data_word(0x000000ff);
  b.emit(mk::ldr(reg::r1, reg::r8));
  b.emit(mk::ldrb(reg::r2, reg::r9));
  auto pipe = run_program(b.build(), cortex_a7(),
                          {{reg::r8, a1}, {reg::r9, a2}});
  // ldrb transitions the MDR by the *word* distance (24), not byte (0).
  EXPECT_TRUE(has_event(pipe.activity(), component::mdr, 24));
}

TEST(PipelineActivity, AlignBufferCombinesSubwordValuesAcrossWordLoads) {
  asmx::program_builder b;
  const std::uint32_t a1 = b.data_word(0x000000f0); // byte 0xf0
  const std::uint32_t a2 = b.data_word(0x12345678); // interleaved word
  const std::uint32_t a3 = b.data_word(0x0000000f); // byte 0x0f
  b.emit(mk::ldrb(reg::r1, reg::r8));
  b.emit(mk::ldr(reg::r2, reg::r9));
  b.emit(mk::ldrb(reg::r3, reg::r10));
  auto pipe = run_program(b.build(), cortex_a7(),
                          {{reg::r8, a1}, {reg::r9, a2}, {reg::r10, a3}});
  // Align buffer: 0xf0 -> 0x0f directly (HD 8), word load skipped.
  EXPECT_TRUE(has_event(pipe.activity(), component::align_buffer, 8));
}

TEST(PipelineActivity, AlignBufferAblationRemovesEvents) {
  micro_arch_config config = cortex_a7();
  config.has_align_buffer = false;
  asmx::program_builder b;
  const std::uint32_t a1 = b.data_word(0x000000f0);
  b.emit(mk::ldrb(reg::r1, reg::r8));
  auto pipe = run_program(b.build(), config, {{reg::r8, a1}});
  EXPECT_EQ(count_events(pipe.activity(), component::align_buffer), 0);
}

TEST(PipelineActivity, StoreDataTraversesOperandBus) {
  asmx::program_builder b;
  const std::uint32_t a1 = b.data_word(0);
  const std::uint32_t a2 = b.data_word(0);
  b.emit(mk::str(reg::r1, reg::r8));
  b.emit(mk::str(reg::r2, reg::r9));
  const std::uint32_t d1 = 0x000000ff;
  const std::uint32_t d2 = 0x0000ff00;
  auto pipe = run_program(
      b.build(), cortex_a7(),
      {{reg::r1, d1}, {reg::r2, d2}, {reg::r8, a1}, {reg::r9, a2}});
  EXPECT_TRUE(has_event(pipe.activity(), component::is_ex_bus,
                        util::hamming_distance(d1, d2)));
}

TEST(PipelineActivity, ShifterBufferEmitsHammingWeightOfShiftedValue) {
  asmx::program_builder b;
  b.emit(mk::dp_shift(isa::opcode::add, reg::r1, reg::r2, reg::r3,
                      isa::shift_kind::lsl, 4));
  const std::uint32_t rc = 0x0000ff0f;
  auto pipe = run_program(b.build(), cortex_a7(),
                          {{reg::r2, 1}, {reg::r3, rc}});
  EXPECT_TRUE(has_event(pipe.activity(), component::shift_buffer,
                        util::hamming_weight(rc << 4)));
}

TEST(PipelineActivity, AluOutputEmitsResultHammingWeight) {
  asmx::program_builder b;
  b.emit(mk::add(reg::r1, reg::r2, reg::r3));
  auto pipe = run_program(b.build(), cortex_a7(),
                          {{reg::r2, 0x0f}, {reg::r3, 0xf0}});
  EXPECT_TRUE(has_event(pipe.activity(), component::alu_out,
                        util::hamming_weight(0xff)));
}

TEST(PipelineActivity, DualIssuedPairUsesSeparateWritebackLanes) {
  asmx::program_builder b;
  b.emit(mk::add(reg::r1, reg::r2, reg::r3));
  b.emit(mk::add_imm(reg::r4, reg::r5, 9));
  auto pipe = run_program(b.build(), cortex_a7(),
                          {{reg::r2, 3}, {reg::r3, 4}, {reg::r5, 10}});
  ASSERT_GE(pipe.dual_issue_pairs(), 1u);
  bool lane0 = false;
  bool lane1 = false;
  for (const activity_event& ev : pipe.activity()) {
    if (ev.comp == component::ex_wb_latch) {
      lane0 |= ev.lane == 0;
      lane1 |= ev.lane == 1;
    }
  }
  EXPECT_TRUE(lane0);
  EXPECT_TRUE(lane1);
}

TEST(PipelineActivity, RecordingCanBeDisabled) {
  asmx::program_builder b;
  b.emit(mk::add(reg::r1, reg::r2, reg::r3));
  pipeline pipe(b.build(), cortex_a7());
  pipe.set_record_activity(false);
  pipe.state().set_reg(reg::r2, 1);
  pipe.run();
  EXPECT_TRUE(pipe.activity().empty());
}

TEST(PipelineActivity, MarksRecordCycles) {
  asmx::program_builder b;
  b.emit(mk::mark(5));
  b.pad_nops(3);
  b.emit(mk::mark(6));
  pipeline pipe(b.build(), cortex_a7());
  pipe.warm_caches();
  pipe.run();
  ASSERT_EQ(pipe.marks().size(), 2u);
  EXPECT_EQ(pipe.marks()[0].id, 5);
  EXPECT_EQ(pipe.marks()[1].id, 6);
  EXPECT_EQ(pipe.marks()[1].cycle - pipe.marks()[0].cycle, 4u);
}

} // namespace
} // namespace usca::sim
