// Bit-identity contract of the batched SoA engines (sim/batch_sim.h):
// every surviving lane of a batch run must produce EXACTLY the activity
// stream, marks, cycle count, and architectural state of a per-trace run
// of the reference backend with the same inputs — at every batch size,
// on both backends.  The AES campaign workload must never eject a lane
// (its schedule is data-independent by construction); random conditional
// programs exercise the ejection protocol, where the leader must always
// survive and every non-ejected lane must still match per-trace exactly.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/aes128.h"
#include "crypto/aes_codegen.h"
#include "random_program.h"
#include "sim/backend.h"
#include "sim/batch_sim.h"
#include "sim/micro_arch_config.h"
#include "sim/uarch_activity.h"
#include "util/error.h"
#include "util/rng.h"

namespace usca::sim {
namespace {

using isa::reg;
using testing::random_program;

micro_arch_config config_for(backend_kind kind) {
  return kind == backend_kind::ooo ? cortex_a7_ooo() : cortex_a7();
}

struct per_trace_result {
  activity_trace activity;
  std::vector<mark_stamp> marks;
  std::uint64_t cycles = 0;
  cpu_state state;
  crypto::aes_block ciphertext{};
};

struct batch_case {
  backend_kind kind;
  std::size_t lanes;
};

class BatchSimEquivalence : public ::testing::TestWithParam<batch_case> {};

TEST_P(BatchSimEquivalence, AesLanesAreBitIdenticalToPerTrace) {
  const batch_case param = GetParam();
  const crypto::aes_program_layout layout =
      crypto::generate_aes128_program();
  const program_image image(layout.prog);
  const micro_arch_config config = config_for(param.kind);
  const crypto::aes_key key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                               0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                               0x09, 0xcf, 0x4f, 0x3c};
  const crypto::aes_round_keys round_keys = crypto::expand_key(key);

  util::xoshiro256 rng(0x5eed5eed);
  std::vector<crypto::aes_block> plaintexts(param.lanes);
  for (crypto::aes_block& pt : plaintexts) {
    for (std::uint8_t& b : pt) {
      b = static_cast<std::uint8_t>(rng.next_u32());
    }
  }

  // Reference: one per-trace run per lane.
  std::vector<per_trace_result> expected(param.lanes);
  const std::unique_ptr<backend> core =
      make_backend(param.kind, image, config);
  for (std::size_t l = 0; l < param.lanes; ++l) {
    core->reset();
    crypto::install_aes_inputs(core->memory(), layout, round_keys,
                               plaintexts[l]);
    core->warm_caches();
    core->run();
    expected[l] = {core->activity(), core->marks(), core->cycles(),
                   core->state(),
                   crypto::read_aes_state(core->memory(), layout)};
  }

  const std::unique_ptr<batch_backend> batch =
      make_batch_backend(param.kind, image, config, param.lanes);
  ASSERT_EQ(batch->lanes(), param.lanes);
  for (std::size_t l = 0; l < param.lanes; ++l) {
    crypto::install_aes_inputs(batch->memory(l), layout, round_keys,
                               plaintexts[l]);
  }
  batch->warm_caches();
  batch->run();

  EXPECT_FALSE(batch->any_lane_diverged())
      << "the AES schedule is data-independent: no lane may eject";
  for (std::size_t l = 0; l < param.lanes; ++l) {
    SCOPED_TRACE(l);
    EXPECT_EQ(batch->cycles(), expected[l].cycles);
    ASSERT_EQ(batch->marks().size(), expected[l].marks.size());
    for (std::size_t m = 0; m < expected[l].marks.size(); ++m) {
      EXPECT_EQ(batch->marks()[m].id, expected[l].marks[m].id);
      EXPECT_EQ(batch->marks()[m].cycle, expected[l].marks[m].cycle);
      EXPECT_EQ(batch->marks()[m].dual_pairs,
                expected[l].marks[m].dual_pairs);
    }
    EXPECT_EQ(batch->activity(l), expected[l].activity);
    const auto last = static_cast<std::uint32_t>(batch->cycles() + 16);
    EXPECT_EQ(activity_window_digest(batch->activity(l), 0, last),
              activity_window_digest(expected[l].activity, 0, last));
    EXPECT_EQ(batch->state(l).regs, expected[l].state.regs);
    EXPECT_EQ(crypto::read_aes_state(batch->memory(l), layout),
              expected[l].ciphertext);
  }

  // reset() must restore a fresh batch: run the same inputs again and the
  // leader's stream must reproduce (the zero-reallocation worker contract).
  batch->reset();
  for (std::size_t l = 0; l < param.lanes; ++l) {
    crypto::install_aes_inputs(batch->memory(l), layout, round_keys,
                               plaintexts[l]);
  }
  batch->warm_caches();
  batch->run();
  EXPECT_EQ(batch->activity(0), expected[0].activity);
}

INSTANTIATE_TEST_SUITE_P(
    LaneSweep, BatchSimEquivalence,
    ::testing::Values(batch_case{backend_kind::inorder, 1},
                      batch_case{backend_kind::inorder, 2},
                      batch_case{backend_kind::inorder, 7},
                      batch_case{backend_kind::inorder, 64},
                      batch_case{backend_kind::ooo, 1},
                      batch_case{backend_kind::ooo, 2},
                      batch_case{backend_kind::ooo, 7},
                      batch_case{backend_kind::ooo, 64}));

class BatchSimFuzz : public ::testing::TestWithParam<backend_kind> {};

TEST_P(BatchSimFuzz, SurvivingLanesMatchPerTraceOnRandomPrograms) {
  const backend_kind kind = GetParam();
  const micro_arch_config config = config_for(kind);
  constexpr std::size_t lanes = 8;

  util::xoshiro256 rng(0xf022ba11);
  for (int round = 0; round < 12; ++round) {
    const asmx::program prog = random_program(rng, 50);
    const program_image image(prog);
    const std::uint32_t buffer = *prog.symbol("buffer");

    // Random per-lane register files: conditional flows diverge freely.
    std::array<std::array<std::uint32_t, 8>, lanes> init{};
    for (auto& regs : init) {
      for (std::uint32_t& v : regs) {
        v = rng.next_u32();
      }
    }

    const std::unique_ptr<batch_backend> batch =
        make_batch_backend(kind, image, config, lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      for (int r = 0; r < 8; ++r) {
        batch->state(l).regs[static_cast<std::size_t>(r)] = init[l][r];
      }
      batch->state(l).set_reg(reg::r10, buffer);
    }
    batch->warm_caches();
    batch->run();

    // The leader defines the schedule; it must never eject.
    EXPECT_FALSE(batch->lane_diverged(0));

    const std::unique_ptr<backend> core = make_backend(kind, image, config);
    for (std::size_t l = 0; l < lanes; ++l) {
      if (batch->lane_diverged(l)) {
        continue;
      }
      SCOPED_TRACE(l);
      core->reset();
      for (int r = 0; r < 8; ++r) {
        core->state().regs[static_cast<std::size_t>(r)] = init[l][r];
      }
      core->state().set_reg(reg::r10, buffer);
      core->warm_caches();
      core->run();
      EXPECT_EQ(batch->cycles(), core->cycles());
      EXPECT_EQ(batch->activity(l), core->activity());
      EXPECT_EQ(batch->state(l).regs, core->state().regs);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, BatchSimFuzz,
                         ::testing::Values(backend_kind::inorder,
                                           backend_kind::ooo));

// Deterministic ejection coverage: a conditional branch whose outcome is
// steered by a per-lane register value MUST eject exactly the lanes that
// disagree with the leader — and the survivors (leader included) must
// still match per-trace bit-for-bit.
TEST_P(BatchSimFuzz, ConditionalBranchEjectsDisagreeingLanes) {
  const backend_kind kind = GetParam();
  const micro_arch_config config = config_for(kind);
  namespace mk = isa::ins;

  asmx::program_builder b;
  b.emit(mk::cmp_imm(reg::r0, 0));
  b.emit(mk::b(2, isa::condition::eq)); // taken only when r0 == 0
  b.emit(mk::eor(reg::r1, reg::r1, reg::r2));
  b.emit(mk::add(reg::r3, reg::r1, reg::r2));
  b.emit(mk::str(reg::r3, reg::r10, 0));
  b.emit(mk::halt());
  b.define_symbol("buffer", b.data_block(16, 4));
  const asmx::program prog = b.build();
  const program_image image(prog);
  const std::uint32_t buffer = *prog.symbol("buffer");

  constexpr std::size_t lanes = 4;
  // Lanes 0 and 2 take the branch (r0 == 0); lanes 1 and 3 disagree.
  const std::array<std::uint32_t, lanes> r0 = {0, 7, 0, 9};

  const std::unique_ptr<batch_backend> batch =
      make_batch_backend(kind, image, config, lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    batch->state(l).set_reg(reg::r0, r0[l]);
    batch->state(l).set_reg(reg::r1, 0x1111u * (static_cast<std::uint32_t>(l) + 1));
    batch->state(l).set_reg(reg::r2, 0xa5a5a5a5u);
    batch->state(l).set_reg(reg::r10, buffer);
  }
  batch->warm_caches();
  batch->run();

  EXPECT_FALSE(batch->lane_diverged(0));
  EXPECT_TRUE(batch->lane_diverged(1));
  EXPECT_FALSE(batch->lane_diverged(2));
  EXPECT_TRUE(batch->lane_diverged(3));
  EXPECT_TRUE(batch->any_lane_diverged());

  const std::unique_ptr<backend> core = make_backend(kind, image, config);
  for (const std::size_t l : {std::size_t{0}, std::size_t{2}}) {
    SCOPED_TRACE(l);
    core->reset();
    core->state().set_reg(reg::r0, r0[l]);
    core->state().set_reg(reg::r1,
                          0x1111u * (static_cast<std::uint32_t>(l) + 1));
    core->state().set_reg(reg::r2, 0xa5a5a5a5u);
    core->state().set_reg(reg::r10, buffer);
    core->warm_caches();
    core->run();
    EXPECT_EQ(batch->cycles(), core->cycles());
    EXPECT_EQ(batch->activity(l), core->activity());
    EXPECT_EQ(batch->state(l).regs, core->state().regs);
  }
}

TEST(BatchSimLaneView, SimulationEntryPointsThrow) {
  const crypto::aes_program_layout layout =
      crypto::generate_aes128_program();
  const program_image image(layout.prog);
  const std::unique_ptr<batch_backend> batch =
      make_batch_backend(backend_kind::inorder, image, cortex_a7(), 2);
  batch_lane_view view(*batch, 1);
  EXPECT_EQ(&view.state(), &batch->state(1));
  EXPECT_EQ(&view.memory(), &batch->memory(1));
  EXPECT_EQ(view.kind(), backend_kind::inorder);
  EXPECT_THROW(view.run(), util::simulation_error);
  EXPECT_THROW(view.reset(), util::simulation_error);
  EXPECT_THROW(view.step_cycle(), util::simulation_error);
  EXPECT_THROW(view.warm_caches(), util::simulation_error);
}

TEST(BatchSimPartialGroup, LimitedLanesMatchAndKeepLimitAcrossReset) {
  const crypto::aes_program_layout layout =
      crypto::generate_aes128_program();
  const program_image image(layout.prog);
  const crypto::aes_round_keys round_keys =
      crypto::expand_key({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                          14, 15});
  const crypto::aes_block plaintext = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a,
                                       0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2,
                                       0xe0, 0x37, 0x07, 0x34};

  const std::unique_ptr<backend> core =
      make_backend(backend_kind::ooo, image, cortex_a7_ooo());
  crypto::install_aes_inputs(core->memory(), layout, round_keys, plaintext);
  core->warm_caches();
  core->run();

  const std::unique_ptr<batch_backend> batch =
      make_batch_backend(backend_kind::ooo, image, cortex_a7_ooo(), 16);
  batch->limit_active_lanes(3);
  EXPECT_EQ(batch->active_lanes(), 3u);
  batch->reset();
  EXPECT_EQ(batch->active_lanes(), 3u);
  for (std::size_t l = 0; l < 3; ++l) {
    crypto::install_aes_inputs(batch->memory(l), layout, round_keys,
                               plaintext);
  }
  batch->warm_caches();
  batch->run();
  for (std::size_t l = 0; l < 3; ++l) {
    SCOPED_TRACE(l);
    EXPECT_EQ(batch->activity(l), core->activity());
  }
}

} // namespace
} // namespace usca::sim
