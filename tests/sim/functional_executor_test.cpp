#include "sim/functional_executor.h"

#include <gtest/gtest.h>

#include "asmx/assembler.h"
#include "util/error.h"

namespace usca::sim {
namespace {

using isa::reg;

functional_executor run_source(const std::string& source) {
  functional_executor exec(asmx::assemble(source));
  exec.run();
  return exec;
}

TEST(FunctionalExecutor, ArithmeticChain) {
  auto exec = run_source("ldi r0, #10\n"
                         "ldi r1, #32\n"
                         "add r2, r0, r1\n"
                         "sub r3, r2, r0\n"
                         "halt\n");
  EXPECT_EQ(exec.state().reg(reg::r2), 42u);
  EXPECT_EQ(exec.state().reg(reg::r3), 32u);
}

TEST(FunctionalExecutor, ConditionalExecution) {
  auto exec = run_source("ldi r0, #5\n"
                         "cmp r0, #5\n"
                         "ldieq r1, #1\n"
                         "ldine r2, #1\n"
                         "halt\n");
  EXPECT_EQ(exec.state().reg(reg::r1), 1u);
  EXPECT_EQ(exec.state().reg(reg::r2), 0u);
}

TEST(FunctionalExecutor, LoopSumsOneToTen) {
  auto exec = run_source("ldi r0, #0\n"   // acc
                         "ldi r1, #10\n"  // counter
                         "loop: add r0, r0, r1\n"
                         "subs r1, r1, #1\n"
                         "bne loop\n"
                         "halt\n");
  EXPECT_EQ(exec.state().reg(reg::r0), 55u);
}

TEST(FunctionalExecutor, MemoryLoadStore) {
  auto exec = run_source(".data\n"
                         "src: .word 0x11223344\n"
                         "dst: .word 0\n"
                         ".text\n"
                         "lda r0, src\n"
                         "lda r1, dst\n"
                         "ldr r2, [r0]\n"
                         "str r2, [r1]\n"
                         "ldrb r3, [r0, #1]\n"
                         "ldrh r4, [r0, #2]\n"
                         "halt\n");
  EXPECT_EQ(exec.state().reg(reg::r2), 0x11223344u);
  EXPECT_EQ(exec.state().reg(reg::r3), 0x33u);
  EXPECT_EQ(exec.state().reg(reg::r4), 0x1122u);
  EXPECT_EQ(exec.memory().read32(*exec.program().symbol("dst")),
            0x11223344u);
}

TEST(FunctionalExecutor, SubwordStores) {
  auto exec = run_source(".data\n"
                         "buf: .word 0xffffffff\n"
                         ".text\n"
                         "lda r0, buf\n"
                         "ldi r1, #0xab\n"
                         "strb r1, [r0]\n"
                         "ldi r2, #0x1234\n"
                         "strh r2, [r0, #2]\n"
                         "halt\n");
  EXPECT_EQ(exec.memory().read32(*exec.program().symbol("buf")),
            0x1234ffabu);
}

TEST(FunctionalExecutor, FunctionCallAndReturn) {
  auto exec = run_source("b main\n"
                         "double: add r0, r0, r0\n"
                         "bx lr\n"
                         "main: ldi r0, #21\n"
                         "bl double\n"
                         "halt\n");
  EXPECT_EQ(exec.state().reg(reg::r0), 42u);
}

TEST(FunctionalExecutor, MulAndMla) {
  auto exec = run_source("ldi r0, #6\n"
                         "ldi r1, #7\n"
                         "mul r2, r0, r1\n"
                         "mla r3, r0, r1, r2\n"
                         "halt\n");
  EXPECT_EQ(exec.state().reg(reg::r2), 42u);
  EXPECT_EQ(exec.state().reg(reg::r3), 84u);
}

TEST(FunctionalExecutor, ShiftedOperand) {
  auto exec = run_source("ldi r0, #1\n"
                         "ldi r1, #3\n"
                         "add r2, r1, r0, lsl #4\n"
                         "lsr r3, r2, #1\n"
                         "halt\n");
  EXPECT_EQ(exec.state().reg(reg::r2), 19u);
  EXPECT_EQ(exec.state().reg(reg::r3), 9u);
}

TEST(FunctionalExecutor, NopAndMarkAreArchitecturallyNeutral) {
  auto exec = run_source("ldi r0, #9\n"
                         "nop\n"
                         "mark #1\n"
                         "nop\n"
                         "halt\n");
  EXPECT_EQ(exec.state().reg(reg::r0), 9u);
}

TEST(FunctionalExecutor, RegisterOffsetAddressing) {
  auto exec = run_source(".data\n"
                         "tab: .word 10, 20, 30, 40\n"
                         ".text\n"
                         "lda r0, tab\n"
                         "ldi r1, #3\n"
                         "ldr r2, [r0, r1, lsl #2]\n"
                         "halt\n");
  EXPECT_EQ(exec.state().reg(reg::r2), 40u);
}

TEST(FunctionalExecutor, FallOffEndHalts) {
  functional_executor exec(asmx::assemble("nop\nnop\n"));
  exec.run();
  EXPECT_TRUE(exec.state().halted);
  EXPECT_EQ(exec.instructions_executed(), 2u);
}

TEST(FunctionalExecutor, StepBudgetEnforced) {
  functional_executor exec(asmx::assemble("loop: b loop\n"));
  EXPECT_THROW(exec.run(1000), util::simulation_error);
}

TEST(FunctionalExecutor, BxOutsideCodeHalts) {
  auto exec = run_source("ldi r0, #0xdead0000\n"
                         "bx r0\n"
                         "ldi r1, #1\n" // must not execute
                         "halt\n");
  EXPECT_TRUE(exec.state().halted);
  EXPECT_EQ(exec.state().reg(reg::r1), 0u);
}

TEST(FunctionalExecutor, FlagsAcrossSubtraction) {
  auto exec = run_source("ldi r0, #3\n"
                         "subs r1, r0, #3\n"
                         "halt\n");
  EXPECT_TRUE(exec.state().f.z);
  EXPECT_TRUE(exec.state().f.c); // no borrow
  EXPECT_FALSE(exec.state().f.n);
}

} // namespace
} // namespace usca::sim
