// Timing pins for the pipeline model: every CPI behaviour the paper
// reports for the Cortex-A7 (Section 3) is asserted here.
#include "sim/pipeline.h"

#include <gtest/gtest.h>

#include "asmx/program.h"

namespace usca::sim {
namespace {

using isa::instruction;
using isa::opcode;
using isa::reg;
namespace mk = isa::ins;

double measure_cpi(const std::vector<instruction>& unit,
                   const micro_arch_config& config = cortex_a7(),
                   int reps = 100) {
  asmx::program_builder b;
  const std::uint32_t addr_b = b.data_word(0);
  const std::uint32_t addr_a = b.data_word(addr_b);
  b.load_constant(reg::r8, addr_a);
  b.load_constant(reg::r9, addr_b);
  b.pad_nops(20);
  b.emit(mk::mark(1));
  while (b.size() % 2 != 0) {
    b.pad_nops(1);
  }
  b.repeat(unit, reps);
  b.emit(mk::mark(2));
  b.pad_nops(20);
  pipeline pipe(b.build(), config);
  pipe.set_record_activity(false);
  pipe.warm_caches();
  pipe.run();
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  for (const auto& m : pipe.marks()) {
    (m.id == 1 ? begin : end) = m.cycle;
  }
  return static_cast<double>(end - begin) /
         (static_cast<double>(unit.size()) * reps);
}

TEST(PipelineTiming, HazardFreeMovStreamReachesCpiHalf) {
  const double cpi =
      measure_cpi({mk::mov(reg::r1, reg::r2), mk::mov(reg::r3, reg::r4)});
  EXPECT_LT(cpi, 0.6);
  EXPECT_GT(cpi, 0.4);
}

TEST(PipelineTiming, NopsAreNeverDualIssued) {
  const double cpi = measure_cpi({mk::nop()});
  EXPECT_NEAR(cpi, 1.0, 0.1);
}

TEST(PipelineTiming, MulStreamIsPipelinedAtCpiOne) {
  const double cpi = measure_cpi({mk::mul(reg::r1, reg::r2, reg::r3)});
  EXPECT_NEAR(cpi, 1.0, 0.1);
}

TEST(PipelineTiming, LoadStreamIsPipelinedAtCpiOne) {
  const double cpi = measure_cpi({mk::ldr(reg::r1, reg::r8)});
  EXPECT_NEAR(cpi, 1.0, 0.1);
}

TEST(PipelineTiming, StoreStreamIsPipelinedAtCpiOne) {
  const double cpi = measure_cpi({mk::str(reg::r1, reg::r8)});
  EXPECT_NEAR(cpi, 1.0, 0.1);
}

TEST(PipelineTiming, RawHazardPreventsDualIssue) {
  const double cpi =
      measure_cpi({mk::mov(reg::r1, reg::r2), mk::mov(reg::r3, reg::r1)});
  EXPECT_GE(cpi, 0.95);
}

TEST(PipelineTiming, TwoRegAluPairNotDualIssued) {
  // ALU + ALU needs four read ports; the A7 has three.
  const double cpi = measure_cpi(
      {mk::add(reg::r1, reg::r2, reg::r3), mk::add(reg::r4, reg::r5, reg::r6)});
  EXPECT_GE(cpi, 0.95);
}

TEST(PipelineTiming, AluPlusImmediateAluDualIssues) {
  const double cpi = measure_cpi(
      {mk::add(reg::r1, reg::r2, reg::r3), mk::add_imm(reg::r4, reg::r5, 9)});
  EXPECT_LT(cpi, 0.6);
}

TEST(PipelineTiming, BranchDualIssuesWithMov) {
  const double cpi = measure_cpi({mk::b(0), mk::mov(reg::r1, reg::r2)});
  EXPECT_LT(cpi, 0.6);
}

TEST(PipelineTiming, ShiftPairNeverDualIssues) {
  const double cpi = measure_cpi(
      {mk::lsl(reg::r1, reg::r2, 3), mk::lsr(reg::r4, reg::r5, 2)});
  EXPECT_GE(cpi, 0.95);
}

TEST(PipelineTiming, ScalarConfigurationCapsAtCpiOne) {
  const double cpi = measure_cpi(
      {mk::mov(reg::r1, reg::r2), mk::mov(reg::r3, reg::r4)},
      cortex_a7_scalar());
  EXPECT_GE(cpi, 0.95);
}

TEST(PipelineTiming, NonPipelinedLsuAblationSlowsLoads) {
  micro_arch_config config = cortex_a7();
  config.lsu_pipelined = false;
  const double cpi = measure_cpi({mk::ldr(reg::r1, reg::r8)}, config);
  EXPECT_GE(cpi, 2.5);
}

TEST(PipelineTiming, NonPipelinedMulAblationSlowsMuls) {
  micro_arch_config config = cortex_a7();
  config.mul_pipelined = false;
  const double cpi = measure_cpi({mk::mul(reg::r1, reg::r2, reg::r3)}, config);
  EXPECT_GE(cpi, 2.5);
}

TEST(PipelineTiming, LoadUseDependencyStalls) {
  const double independent = measure_cpi(
      {mk::ldr(reg::r1, reg::r8), mk::add(reg::r4, reg::r5, reg::r6)});
  const double dependent = measure_cpi(
      {mk::ldr(reg::r1, reg::r8), mk::add(reg::r4, reg::r1, reg::r6)});
  EXPECT_GT(dependent, independent + 0.4);
}

TEST(PipelineTiming, TakenLoopRunsWithoutPredictionPenalty) {
  asmx::program_builder b;
  b.emit(mk::mov_imm(reg::r0, 0));
  b.emit(mk::mov_imm(reg::r1, 50));
  const auto loop_start = b.size();
  b.emit(mk::add(reg::r0, reg::r0, reg::r1));
  instruction dec = mk::sub_imm(reg::r1, reg::r1, 1);
  dec.set_flags = true;
  b.emit(dec);
  instruction back = mk::b(static_cast<std::int32_t>(loop_start) -
                               static_cast<std::int32_t>(b.size()) - 1,
                           isa::condition::ne);
  b.emit(back);
  pipeline pipe(b.build(), cortex_a7());
  pipe.warm_caches();
  pipe.run();
  EXPECT_EQ(pipe.state().reg(reg::r0), 50u * 51u / 2u);
  // 50 iterations x 3 instructions, partially paired: well under 4/iter.
  EXPECT_LT(pipe.cycles(), 220u);
}

TEST(PipelineTiming, MispredictPenaltyIncreasesLoopTime) {
  const auto build = [] {
    asmx::program_builder b;
    b.emit(mk::mov_imm(reg::r0, 0));
    b.emit(mk::mov_imm(reg::r1, 50));
    const auto loop_start = b.size();
    b.emit(mk::add(reg::r0, reg::r0, reg::r1));
    instruction dec = mk::sub_imm(reg::r1, reg::r1, 1);
    dec.set_flags = true;
    b.emit(dec);
    b.emit(mk::b(static_cast<std::int32_t>(loop_start) -
                     static_cast<std::int32_t>(b.size()) - 1,
                 isa::condition::ne));
    return b.build();
  };
  micro_arch_config fast = cortex_a7();
  micro_arch_config slow = cortex_a7();
  slow.perfect_branch_prediction = false;
  slow.branch_mispredict_penalty = 5;
  pipeline p1(build(), fast);
  p1.warm_caches();
  p1.run();
  pipeline p2(build(), slow);
  p2.warm_caches();
  p2.run();
  EXPECT_GT(p2.cycles(), p1.cycles() + 100);
  EXPECT_EQ(p1.state().reg(reg::r0), p2.state().reg(reg::r0));
}

TEST(PipelineTiming, ColdCachesCostCycles) {
  asmx::program_builder b;
  b.pad_nops(64);
  pipeline cold(b.build(), cortex_a7());
  cold.run();
  asmx::program_builder b2;
  b2.pad_nops(64);
  pipeline warm(b2.build(), cortex_a7());
  warm.warm_caches();
  warm.run();
  EXPECT_GT(cold.cycles(), warm.cycles());
}

TEST(PipelineTiming, DualIssueCounterTracksPairs) {
  const double cpi = measure_cpi(
      {mk::mov(reg::r1, reg::r2), mk::mov(reg::r3, reg::r4)});
  EXPECT_LT(cpi, 0.6);

  asmx::program_builder b;
  b.emit(mk::mark(1));
  b.repeat({mk::mov(reg::r1, reg::r2), mk::mov(reg::r3, reg::r4)}, 10);
  b.emit(mk::mark(2));
  pipeline pipe(b.build(), cortex_a7());
  pipe.warm_caches();
  pipe.run();
  ASSERT_EQ(pipe.marks().size(), 2u);
  EXPECT_GE(pipe.marks()[1].dual_pairs - pipe.marks()[0].dual_pairs, 8u);
}

// Static pairing predicate: the Table-1 cells plus hazard rules.
TEST(PipelinePairing, TableCells) {
  pipeline pipe(asmx::program_builder().build(), cortex_a7());
  const auto mov_a = mk::mov(reg::r1, reg::r2);
  const auto mov_b = mk::mov(reg::r3, reg::r4);
  const auto alu_a = mk::add(reg::r1, reg::r2, reg::r3);
  const auto alu_b = mk::add(reg::r4, reg::r5, reg::r6);
  const auto imm_b = mk::add_imm(reg::r4, reg::r5, 9);
  const auto mul_b = mk::mul(reg::r4, reg::r5, reg::r6);
  const auto shift_b = mk::lsl(reg::r4, reg::r5, 2);
  const auto ldr_b = mk::ldr(reg::r4, reg::r9);

  EXPECT_TRUE(pipe.statically_pairable(mov_a, mov_b));
  EXPECT_TRUE(pipe.statically_pairable(mov_a, alu_b));
  EXPECT_FALSE(pipe.statically_pairable(alu_a, alu_b));
  EXPECT_TRUE(pipe.statically_pairable(alu_a, imm_b));
  EXPECT_FALSE(pipe.statically_pairable(alu_a, mul_b));
  EXPECT_FALSE(pipe.statically_pairable(mov_a, ldr_b));
  EXPECT_TRUE(pipe.statically_pairable(ldr_b, mov_a));
  EXPECT_TRUE(pipe.statically_pairable(mov_a, shift_b));
  EXPECT_FALSE(pipe.statically_pairable(shift_b, mov_a));
  EXPECT_FALSE(pipe.statically_pairable(mk::nop(), mov_b));
  EXPECT_FALSE(pipe.statically_pairable(mov_a, mk::nop()));
}

TEST(PipelinePairing, HazardRules) {
  pipeline pipe(asmx::program_builder().build(), cortex_a7());
  // RAW: younger reads older's destination.
  EXPECT_FALSE(pipe.statically_pairable(mk::mov(reg::r1, reg::r2),
                                        mk::mov(reg::r3, reg::r1)));
  // WAW: same destination.
  EXPECT_FALSE(pipe.statically_pairable(mk::mov(reg::r1, reg::r2),
                                        mk::mov(reg::r1, reg::r4)));
  // Flag dependency: older sets flags, younger is conditional.
  instruction setter = mk::add(reg::r1, reg::r2, reg::r3);
  setter.set_flags = true;
  EXPECT_FALSE(pipe.statically_pairable(
      setter, mk::mov(reg::r4, reg::r5, isa::condition::eq)));
}

TEST(PipelinePairing, StructuralPolicyDiffersFromTable) {
  micro_arch_config structural = cortex_a7();
  structural.policy = issue_policy::structural;
  pipeline pipe(asmx::program_builder().build(), structural);
  // mov + ldr is forbidden by the A7 issue PLA but fits the raw
  // structural resources — the ablation point of the paper's thesis.
  EXPECT_TRUE(pipe.statically_pairable(mk::mov(reg::r1, reg::r2),
                                       mk::ldr(reg::r4, reg::r9)));
  EXPECT_FALSE(pipe.statically_pairable(mk::ldr(reg::r1, reg::r8),
                                        mk::ldr(reg::r4, reg::r9)));
}

} // namespace
} // namespace usca::sim
