#include "sim/alu.h"

#include <gtest/gtest.h>

namespace usca::sim {
namespace {

using isa::opcode;
using isa::shift_kind;

TEST(AluShift, LslBasics) {
  EXPECT_EQ(apply_shift(1, shift_kind::lsl, 4, false).value, 16u);
  EXPECT_EQ(apply_shift(0x80000000, shift_kind::lsl, 1, false).value, 0u);
  EXPECT_TRUE(apply_shift(0x80000000, shift_kind::lsl, 1, false).carry);
  EXPECT_FALSE(apply_shift(1, shift_kind::lsl, 1, false).carry);
}

TEST(AluShift, AmountZeroIsIdentityAndKeepsCarry) {
  for (const auto kind : {shift_kind::lsl, shift_kind::lsr, shift_kind::asr,
                          shift_kind::ror}) {
    const shift_result r = apply_shift(0xdeadbeef, kind, 0, true);
    EXPECT_EQ(r.value, 0xdeadbeefu);
    EXPECT_TRUE(r.carry);
  }
}

TEST(AluShift, LsrBasics) {
  EXPECT_EQ(apply_shift(16, shift_kind::lsr, 4, false).value, 1u);
  EXPECT_TRUE(apply_shift(0x10, shift_kind::lsr, 5, false).carry);
  EXPECT_EQ(apply_shift(0xffffffff, shift_kind::lsr, 32, false).value, 0u);
  EXPECT_TRUE(apply_shift(0x80000000, shift_kind::lsr, 32, false).carry);
}

TEST(AluShift, AsrPropagatesSign) {
  EXPECT_EQ(apply_shift(0x80000000, shift_kind::asr, 4, false).value,
            0xf8000000u);
  EXPECT_EQ(apply_shift(0x80000000, shift_kind::asr, 40, false).value,
            0xffffffffu);
  EXPECT_EQ(apply_shift(0x40000000, shift_kind::asr, 40, false).value, 0u);
}

TEST(AluShift, RorRotates) {
  EXPECT_EQ(apply_shift(0x000000f0, shift_kind::ror, 4, false).value,
            0x0000000fu);
  EXPECT_EQ(apply_shift(1, shift_kind::ror, 1, false).value, 0x80000000u);
  EXPECT_EQ(apply_shift(0x12345678, shift_kind::ror, 32, false).value,
            0x12345678u);
}

isa::flags no_flags() { return isa::flags{}; }

TEST(AluExec, AddCarryOverflow) {
  // 0x7fffffff + 1 = signed overflow, no carry.
  alu_result r = execute_dp(opcode::add, 0x7fffffff, 1, false, no_flags());
  EXPECT_EQ(r.value, 0x80000000u);
  EXPECT_TRUE(r.f.v);
  EXPECT_FALSE(r.f.c);
  EXPECT_TRUE(r.f.n);
  // 0xffffffff + 1 = carry out, no overflow.
  r = execute_dp(opcode::add, 0xffffffff, 1, false, no_flags());
  EXPECT_EQ(r.value, 0u);
  EXPECT_TRUE(r.f.c);
  EXPECT_FALSE(r.f.v);
  EXPECT_TRUE(r.f.z);
}

TEST(AluExec, SubBorrowSemantics) {
  // ARM: C is NOT-borrow.
  alu_result r = execute_dp(opcode::sub, 5, 3, false, no_flags());
  EXPECT_EQ(r.value, 2u);
  EXPECT_TRUE(r.f.c);
  r = execute_dp(opcode::sub, 3, 5, false, no_flags());
  EXPECT_EQ(r.value, 0xfffffffeu);
  EXPECT_FALSE(r.f.c);
  EXPECT_TRUE(r.f.n);
}

TEST(AluExec, AdcSbcUseCarry) {
  isa::flags f;
  f.c = true;
  EXPECT_EQ(execute_dp(opcode::adc, 1, 2, false, f).value, 4u);
  f.c = false;
  EXPECT_EQ(execute_dp(opcode::adc, 1, 2, false, f).value, 3u);
  f.c = true;
  EXPECT_EQ(execute_dp(opcode::sbc, 5, 3, false, f).value, 2u);
  f.c = false;
  EXPECT_EQ(execute_dp(opcode::sbc, 5, 3, false, f).value, 1u);
}

TEST(AluExec, RsbReverses) {
  EXPECT_EQ(execute_dp(opcode::rsb, 3, 10, false, no_flags()).value, 7u);
}

TEST(AluExec, LogicalOpsSetCarryFromShifter) {
  alu_result r = execute_dp(opcode::and_, 0xf0f0, 0x0ff0, true, no_flags());
  EXPECT_EQ(r.value, 0x00f0u);
  EXPECT_TRUE(r.f.c); // carried in from the shifter
  r = execute_dp(opcode::eor, 0xff00, 0x0ff0, false, no_flags());
  EXPECT_EQ(r.value, 0xf0f0u);
  EXPECT_FALSE(r.f.c);
}

TEST(AluExec, MovMvn) {
  EXPECT_EQ(execute_dp(opcode::mov, 0, 0x1234, false, no_flags()).value,
            0x1234u);
  EXPECT_EQ(execute_dp(opcode::mvn, 0, 0, false, no_flags()).value,
            0xffffffffu);
}

TEST(AluExec, ComparesDontWriteResult) {
  EXPECT_FALSE(execute_dp(opcode::cmp, 1, 1, false, no_flags()).writes_result);
  EXPECT_FALSE(execute_dp(opcode::tst, 1, 1, false, no_flags()).writes_result);
  EXPECT_TRUE(execute_dp(opcode::cmp, 1, 1, false, no_flags()).f.z);
}

TEST(AluExec, Operand2Evaluation) {
  auto ins = isa::ins::dp_shift(opcode::add, isa::reg::r0, isa::reg::r1,
                                isa::reg::r2, shift_kind::lsl, 4);
  const auto read = [](isa::reg r) {
    return r == isa::reg::r2 ? 0x10u : 0u;
  };
  const operand2_value v = eval_operand2(ins, read, false);
  EXPECT_EQ(v.pre_shift, 0x10u);
  EXPECT_EQ(v.value, 0x100u);
  EXPECT_TRUE(v.used_shifter);
}

TEST(AluExec, Operand2ImmediateBypassesShifter) {
  const auto ins = isa::ins::add_imm(isa::reg::r0, isa::reg::r1, 42);
  const auto read = [](isa::reg) { return 0u; };
  const operand2_value v = eval_operand2(ins, read, false);
  EXPECT_EQ(v.value, 42u);
  EXPECT_FALSE(v.used_shifter);
}

TEST(AluExec, RegisterShiftUsesLowByte) {
  auto ins = isa::ins::add(isa::reg::r0, isa::reg::r1, isa::reg::r2);
  ins.op2.shift.by_register = true;
  ins.op2.shift.kind = shift_kind::lsl;
  ins.op2.shift.amount_reg = isa::reg::r3;
  const auto read = [](isa::reg r) {
    if (r == isa::reg::r2) {
      return 1u;
    }
    if (r == isa::reg::r3) {
      return 0x104u; // low byte = 4
    }
    return 0u;
  };
  EXPECT_EQ(eval_operand2(ins, read, false).value, 16u);
}

} // namespace
} // namespace usca::sim
