// Strict environment-knob parsing.  Every USCA_* toggle that selects an
// implementation path (USCA_SIM_BATCH, USCA_OOO_REFERENCE,
// USCA_BATCH_KERNEL) must reject unknown values loudly, listing what it
// accepts: a typo that silently fell back to a default would change
// which code produced a campaign's numbers without anyone noticing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "sim/batch_sim.h"
#include "sim/ooo/ooo_core.h"
#include "stats/batch_kernels.h"
#include "util/error.h"

namespace usca {
namespace {

template <typename Error, typename Fn>
std::string message_of(Fn&& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected exception";
  return {};
}

// ----------------------------------------------------- USCA_SIM_BATCH

TEST(SimBatchEnv, AcceptsValidValues) {
  EXPECT_EQ(sim::parse_sim_batch_env(nullptr),
            sim::default_sim_batch_lanes);
  EXPECT_EQ(sim::parse_sim_batch_env(""), sim::default_sim_batch_lanes);
  EXPECT_EQ(sim::parse_sim_batch_env("0"), 0u);
  EXPECT_EQ(sim::parse_sim_batch_env("1"), 1u);
  EXPECT_EQ(sim::parse_sim_batch_env("16"), 16u);
  EXPECT_EQ(sim::parse_sim_batch_env("64"), 64u);
}

TEST(SimBatchEnv, RejectsGarbageListingValidValues) {
  for (const char* bad : {"65", "1000", "-1", "batch", "1x", " 1", "0x10"}) {
    const std::string what = message_of<util::simulation_error>(
        [bad] { sim::parse_sim_batch_env(bad); });
    EXPECT_NE(what.find("USCA_SIM_BATCH"), std::string::npos) << bad;
    EXPECT_NE(what.find("valid values"), std::string::npos) << bad;
    EXPECT_NE(what.find(bad), std::string::npos) << bad;
  }
}

TEST(SimBatchEnv, ResolutionPrefersEnvOverConfig) {
  unsetenv("USCA_SIM_BATCH");
  EXPECT_EQ(sim::resolve_sim_batch_lanes(-1), sim::default_sim_batch_lanes);
  EXPECT_EQ(sim::resolve_sim_batch_lanes(0), 0u);
  EXPECT_EQ(sim::resolve_sim_batch_lanes(5), 5u);
  EXPECT_EQ(sim::resolve_sim_batch_lanes(1000), sim::max_batch_lanes);

  setenv("USCA_SIM_BATCH", "7", 1);
  EXPECT_EQ(sim::resolve_sim_batch_lanes(-1), 7u);
  EXPECT_EQ(sim::resolve_sim_batch_lanes(0), 7u);
  EXPECT_EQ(sim::resolve_sim_batch_lanes(32), 7u);
  setenv("USCA_SIM_BATCH", "0", 1);
  EXPECT_EQ(sim::resolve_sim_batch_lanes(32), 0u);
  unsetenv("USCA_SIM_BATCH");
  EXPECT_EQ(sim::resolve_sim_batch_lanes(32), 32u);
}

// ------------------------------------------------- USCA_OOO_REFERENCE

TEST(OooReferenceEnv, AcceptsValidValues) {
  EXPECT_FALSE(sim::parse_ooo_reference_env(nullptr));
  EXPECT_FALSE(sim::parse_ooo_reference_env(""));
  EXPECT_FALSE(sim::parse_ooo_reference_env("0"));
  EXPECT_TRUE(sim::parse_ooo_reference_env("1"));
}

TEST(OooReferenceEnv, RejectsGarbageListingValidValues) {
  for (const char* bad : {"2", "yes", "true", "01", "reference"}) {
    const std::string what = message_of<util::simulation_error>(
        [bad] { sim::parse_ooo_reference_env(bad); });
    EXPECT_NE(what.find("USCA_OOO_REFERENCE"), std::string::npos) << bad;
    EXPECT_NE(what.find("valid values"), std::string::npos) << bad;
    EXPECT_NE(what.find(bad), std::string::npos) << bad;
  }
}

// -------------------------------------------------- USCA_BATCH_KERNEL

TEST(BatchKernelEnv, AcceptsValidValues) {
  // Auto-detection picks whatever this machine has; forcing a set that
  // exists returns exactly that set.
  const stats::batch_kernels& autod = stats::kernels_for_env(nullptr);
  EXPECT_EQ(&stats::kernels_for_env(""), &autod);
  EXPECT_STREQ(stats::kernels_for_env("generic").name, "generic");
  if (stats::avx2_kernels() != nullptr) {
    EXPECT_STREQ(stats::kernels_for_env("avx2").name, "avx2");
  } else {
    // Known-but-unavailable warns and falls back, never throws.
    EXPECT_STREQ(stats::kernels_for_env("avx2").name, "generic");
  }
  if (stats::neon_kernels() != nullptr) {
    EXPECT_STREQ(stats::kernels_for_env("neon").name, "neon");
  } else {
    EXPECT_STREQ(stats::kernels_for_env("neon").name, "generic");
  }
}

TEST(BatchKernelEnv, RejectsGarbageListingValidValues) {
  for (const char* bad : {"sse", "AVX2", "fast", "generic "}) {
    const std::string what = message_of<util::analysis_error>(
        [bad] { stats::kernels_for_env(bad); });
    EXPECT_NE(what.find("USCA_BATCH_KERNEL"), std::string::npos) << bad;
    EXPECT_NE(what.find("valid values"), std::string::npos) << bad;
    EXPECT_NE(what.find(bad), std::string::npos) << bad;
  }
}

} // namespace
} // namespace usca
