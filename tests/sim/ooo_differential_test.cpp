// Differential testing of the out-of-order backend: on random programs,
// the OoO core must retire bit-identical architectural state (registers,
// flags, memory) to BOTH the functional reference executor and the
// in-order pipeline — while its activity stream must differ from the
// in-order pipeline's.  Same ISA, same semantics, different
// micro-architecture, different leakage: the paper's thesis as a test.
#include <gtest/gtest.h>

#include "asmx/program.h"
#include "random_program.h"
#include "sim/functional_executor.h"
#include "sim/ooo/ooo_core.h"
#include "sim/pipeline.h"
#include "util/rng.h"

namespace usca::sim {
namespace {

using isa::reg;
using testing::random_program;
using testing::random_program_buffer_words;

struct ooo_differential_case {
  std::uint64_t seed;
  ooo_config ooo; ///< sizing of the OoO engine under test
};

class OooDifferentialTest
    : public ::testing::TestWithParam<ooo_differential_case> {};

TEST_P(OooDifferentialTest, RetiresIdenticallyWhileLeakingDifferently) {
  const ooo_differential_case param = GetParam();
  util::xoshiro256 rng(param.seed);

  const micro_arch_config ooo_arch = cortex_a7_ooo(param.ooo);

  std::size_t rounds_with_activity_diff = 0;
  constexpr int rounds = 20;
  for (int round = 0; round < rounds; ++round) {
    const asmx::program prog = random_program(rng, 60);

    functional_executor iss(prog);
    pipeline pipe(prog, cortex_a7());
    ooo_core ooo(prog, ooo_arch);
    for (int r = 0; r < 8; ++r) {
      const std::uint32_t v = rng.next_u32();
      iss.state().regs[static_cast<std::size_t>(r)] = v;
      pipe.state().regs[static_cast<std::size_t>(r)] = v;
      ooo.state().regs[static_cast<std::size_t>(r)] = v;
    }
    const std::uint32_t buffer = *prog.symbol("buffer");
    iss.state().set_reg(reg::r10, buffer);
    pipe.state().set_reg(reg::r10, buffer);
    ooo.state().set_reg(reg::r10, buffer);
    pipe.warm_caches();
    ooo.warm_caches();

    iss.run();
    pipe.run();
    ooo.run();

    // Architectural state: all three agree bit-for-bit.
    for (int r = 0; r < 13; ++r) {
      ASSERT_EQ(iss.state().regs[static_cast<std::size_t>(r)],
                ooo.state().regs[static_cast<std::size_t>(r)])
          << "seed=" << param.seed << " round=" << round << " reg=r" << r;
      ASSERT_EQ(pipe.state().regs[static_cast<std::size_t>(r)],
                ooo.state().regs[static_cast<std::size_t>(r)])
          << "seed=" << param.seed << " round=" << round << " reg=r" << r;
    }
    ASSERT_EQ(iss.state().f, ooo.state().f)
        << "seed=" << param.seed << " round=" << round;
    for (std::uint32_t w = 0; w < random_program_buffer_words; ++w) {
      ASSERT_EQ(iss.memory().read32(buffer + 4 * w),
                ooo.memory().read32(buffer + 4 * w))
          << "seed=" << param.seed << " round=" << round << " word=" << w;
    }

    // Every instruction the front end accepted must have committed.
    EXPECT_EQ(ooo.instructions_issued(), ooo.instructions_retired())
        << "seed=" << param.seed << " round=" << round;

    // Micro-architectural divergence: the two cycle-level backends must
    // not produce the same switching-event stream.
    if (ooo.activity() != pipe.activity()) {
      ++rounds_with_activity_diff;
    }
  }
  // Random 60-instruction programs always exercise real datapath
  // activity; demanding divergence in every round pins that the OoO
  // stream is not accidentally the in-order stream relabelled.
  EXPECT_EQ(rounds_with_activity_diff, static_cast<std::size_t>(rounds));
}

INSTANTIATE_TEST_SUITE_P(
    RandomPrograms, OooDifferentialTest,
    ::testing::Values(
        // Default 2-wide engine.
        ooo_differential_case{1101, ooo_config{}},
        ooo_differential_case{2202, ooo_config{}},
        // Tiny machine: 4-entry ROB, scalar rename/retire, 2 RS entries —
        // stresses every structural stall path.
        ooo_differential_case{3303, ooo_config{4, 1, 1, 2, 24, 1, 1}},
        // Wide machine: deep ROB/RS, 4-wide rename/retire/CDB.
        ooo_differential_case{4404, ooo_config{64, 4, 4, 32, 128, 4, 8}},
        // Minimal PRF headroom: rename constantly stalls on the free list.
        ooo_differential_case{5505, ooo_config{16, 2, 2, 8, 19, 2, 2}}));

} // namespace
} // namespace usca::sim
