// Contract suite of the speculation subsystem (sim/ooo/speculation.h):
//
//   1. `predictor = perfect` is bit-identical to the pre-speculation
//      model — the AES golden digests pin this, and a speculating core
//      never emits bp_table/btb_port events under the perfect predictor.
//   2. Speculation changes ONLY timing and activity: for every predictor
//      kind, the architectural results (registers, flags, memory, mark
//      ids) of seeded random programs are identical to the spec-off run.
//   3. The fast and reference schedulers stay bit-identical under
//      speculation — wrong-path rename, dispatch, issue and the recovery
//      flush included.
//   4. Recovery flushes nest correctly behind in-flight wrong-path
//      branches, and RSB over/underflow stays deterministic.
//   5. USCA_SPEC_PREDICTOR parses strictly and overrides live; the
//      batched OoO core rejects speculative configs and campaigns fall
//      back to the per-trace path with byte-identical records.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "asmx/program.h"
#include "core/campaign.h"
#include "crypto/aes_codegen.h"
#include "random_program.h"
#include "sim/ooo/batch_ooo_core.h"
#include "sim/ooo/ooo_core.h"
#include "sim/ooo/speculation.h"
#include "util/error.h"
#include "util/rng.h"

namespace usca::sim {
namespace {

using isa::condition;
using isa::reg;
using testing::random_program;
using testing::random_program_buffer_words;
namespace mk = isa::ins;

// Same constants as tests/sim/ooo_activity_golden_test.cpp: the perfect
// predictor must reproduce the pinned pre-speculation digest exactly.
constexpr std::uint64_t golden_ooo_digest = 0xcc24a3dc1eafa858ULL;
constexpr crypto::aes_key golden_key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                                        0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                                        0x09, 0xcf, 0x4f, 0x3c};
constexpr crypto::aes_block golden_plaintext = {
    0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
    0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};

speculation_config spec_of(predictor_kind kind) {
  speculation_config spec;
  spec.predictor = kind;
  return spec;
}

/// Architectural outcome of a run — everything that must NOT move when a
/// predictor is enabled.  (Cycles, activity and mark cycle stamps may.)
struct arch_snapshot {
  std::array<std::uint32_t, 16> regs{};
  isa::flags flags;
  std::vector<std::uint32_t> buffer_words;
  std::vector<std::uint16_t> mark_ids;
};

struct full_snapshot {
  arch_snapshot arch;
  std::uint64_t cycles = 0;
  std::uint64_t mispredicts = 0;
  std::uint64_t wrong_path = 0;
  std::vector<mark_stamp> marks;
  activity_trace activity;
};

full_snapshot run_random(const asmx::program& prog,
                         const micro_arch_config& arch,
                         const std::array<std::uint32_t, 8>& inputs,
                         std::uint32_t index_r11) {
  ooo_core core(prog, arch);
  for (std::size_t r = 0; r < inputs.size(); ++r) {
    core.state().regs[r] = inputs[r];
  }
  const std::uint32_t buffer = *prog.symbol("buffer");
  core.state().set_reg(reg::r10, buffer);
  core.state().set_reg(reg::r11, index_r11);
  core.state().set_reg(reg::r12, buffer + 4 * random_program_buffer_words);
  core.warm_caches();
  core.run();

  full_snapshot snap;
  snap.arch.regs = core.state().regs;
  snap.arch.flags = core.state().f;
  for (std::uint32_t w = 0; w < random_program_buffer_words; ++w) {
    snap.arch.buffer_words.push_back(core.memory().read32(buffer + 4 * w));
  }
  for (const mark_stamp& mark : core.marks()) {
    snap.arch.mark_ids.push_back(mark.id);
  }
  snap.cycles = core.cycles();
  snap.mispredicts = core.mispredicts();
  snap.wrong_path = core.wrong_path_renamed();
  snap.marks = core.marks();
  snap.activity = core.activity();
  return snap;
}

/// Directed-program variant of run_random: no buffer/register protocol,
/// just run and snapshot (buffer_words stays empty on both sides).
full_snapshot run_snapshot_of(const asmx::program& prog,
                              const micro_arch_config& arch) {
  ooo_core core(prog, arch);
  core.warm_caches();
  core.run();
  full_snapshot snap;
  snap.arch.regs = core.state().regs;
  snap.arch.flags = core.state().f;
  for (const mark_stamp& mark : core.marks()) {
    snap.arch.mark_ids.push_back(mark.id);
  }
  snap.cycles = core.cycles();
  snap.mispredicts = core.mispredicts();
  snap.wrong_path = core.wrong_path_renamed();
  snap.marks = core.marks();
  snap.activity = core.activity();
  return snap;
}

void expect_same_arch(const arch_snapshot& got, const arch_snapshot& want,
                      std::uint64_t seed, const char* what) {
  ASSERT_EQ(got.regs, want.regs) << what << " seed=" << seed;
  ASSERT_EQ(got.flags, want.flags) << what << " seed=" << seed;
  ASSERT_EQ(got.buffer_words, want.buffer_words) << what << " seed=" << seed;
  ASSERT_EQ(got.mark_ids, want.mark_ids) << what << " seed=" << seed;
}

// ------------------------------------------------------------ golden pin

TEST(SpecEquivalence, PerfectPredictorReproducesGoldenDigest) {
  const crypto::aes_program_layout layout = crypto::generate_aes128_program();
  // Explicitly routed through the speculation-aware constructor: the
  // perfect design point IS the pre-speculation model.
  ooo_core core(layout.prog, cortex_a7_ooo_spec(spec_of(
                                 predictor_kind::perfect)));
  const crypto::aes_round_keys rk = crypto::expand_key(golden_key);
  crypto::install_aes_inputs(core.memory(), layout, rk, golden_plaintext);
  core.warm_caches();
  core.run();

  std::uint64_t window_begin = 0;
  std::uint64_t window_end = 0;
  for (const mark_stamp& mark : core.marks()) {
    if (mark.id == crypto::mark_encrypt_begin) {
      window_begin = mark.cycle;
    }
    if (mark.id == crypto::mark_round1_end) {
      window_end = mark.cycle;
    }
  }
  ASSERT_LT(window_begin, window_end);
  EXPECT_EQ(activity_window_digest(core.activity(),
                                   static_cast<std::uint32_t>(window_begin),
                                   static_cast<std::uint32_t>(window_end)),
            golden_ooo_digest);
  EXPECT_EQ(core.mispredicts(), 0u);
  EXPECT_EQ(core.wrong_path_renamed(), 0u);
  // The predictor structures are silent under the perfect predictor —
  // over the WHOLE run, not just the golden window.
  for (const activity_event& ev : core.activity()) {
    ASSERT_NE(ev.comp, component::bp_table);
    ASSERT_NE(ev.comp, component::btb_port);
  }
}

// --------------------------------------- architectural-identity fuzzing

class SpecArchIdentity : public ::testing::TestWithParam<predictor_kind> {};

TEST_P(SpecArchIdentity, SpeculationNeverChangesArchitecturalState) {
  const predictor_kind kind = GetParam();
  const micro_arch_config base = cortex_a7_ooo();
  const micro_arch_config spec_arch = cortex_a7_ooo_spec(spec_of(kind));

  std::uint64_t total_mispredicts = 0;
  std::uint64_t total_wrong_path = 0;
  constexpr int programs = 200;
  for (int p = 0; p < programs; ++p) {
    const std::uint64_t seed = 0x5bec0000 + static_cast<std::uint64_t>(p);
    util::xoshiro256 rng(seed);
    const int length = 20 + static_cast<int>(rng.bounded(60));
    const asmx::program prog = random_program(rng, length);
    std::array<std::uint32_t, 8> inputs;
    for (auto& v : inputs) {
      v = rng.next_u32();
    }
    const auto index_r11 =
        static_cast<std::uint32_t>(rng.bounded(random_program_buffer_words));

    const full_snapshot off = run_random(prog, base, inputs, index_r11);
    const full_snapshot on = run_random(prog, spec_arch, inputs, index_r11);
    expect_same_arch(on.arch, off.arch, seed, "spec-on vs spec-off");
    EXPECT_EQ(off.mispredicts, 0u);
    total_mispredicts += on.mispredicts;
    total_wrong_path += on.wrong_path;
  }
  // The fuzz corpus contains conditional branches; a predictor that never
  // mispredicts on it is not being exercised (perfect is excluded here).
  EXPECT_GT(total_mispredicts, 0u) << predictor_kind_name(kind);
  EXPECT_GT(total_wrong_path, 0u) << predictor_kind_name(kind);
}

INSTANTIATE_TEST_SUITE_P(
    Predictors, SpecArchIdentity,
    ::testing::Values(predictor_kind::static_btfn, predictor_kind::bimodal,
                      predictor_kind::gshare),
    [](const ::testing::TestParamInfo<predictor_kind>& info) {
      return std::string(predictor_kind_name(info.param)) == "static"
                 ? std::string("static_btfn")
                 : std::string(predictor_kind_name(info.param));
    });

// ----------------------------------- fast vs reference under speculation

TEST(SpecEquivalence, FastAndReferenceSchedulersAgreeUnderSpeculation) {
  speculation_config spec = spec_of(predictor_kind::gshare);
  spec.resolve_latency = 5; // widen the wrong-path window
  micro_arch_config fast_arch = cortex_a7_ooo_spec(spec);
  micro_arch_config ref_arch = fast_arch;
  ref_arch.ooo.scheduler = ooo_scheduler::reference;

  std::uint64_t total_mispredicts = 0;
  constexpr int programs = 120;
  for (int p = 0; p < programs; ++p) {
    const std::uint64_t seed = 0x5bec8000 + static_cast<std::uint64_t>(p);
    util::xoshiro256 rng(seed);
    const int length = 20 + static_cast<int>(rng.bounded(60));
    const asmx::program prog = random_program(rng, length);
    std::array<std::uint32_t, 8> inputs;
    for (auto& v : inputs) {
      v = rng.next_u32();
    }
    const auto index_r11 =
        static_cast<std::uint32_t>(rng.bounded(random_program_buffer_words));

    const full_snapshot fast = run_random(prog, fast_arch, inputs, index_r11);
    const full_snapshot ref = run_random(prog, ref_arch, inputs, index_r11);
    expect_same_arch(fast.arch, ref.arch, seed, "fast vs reference");
    ASSERT_EQ(fast.cycles, ref.cycles) << "seed=" << seed;
    ASSERT_EQ(fast.mispredicts, ref.mispredicts) << "seed=" << seed;
    ASSERT_EQ(fast.wrong_path, ref.wrong_path) << "seed=" << seed;
    ASSERT_EQ(fast.marks.size(), ref.marks.size()) << "seed=" << seed;
    for (std::size_t m = 0; m < fast.marks.size(); ++m) {
      ASSERT_EQ(fast.marks[m].cycle, ref.marks[m].cycle) << "seed=" << seed;
    }
    // Bit-identity of the full activity stream, wrong-path events included.
    ASSERT_EQ(fast.activity, ref.activity) << "seed=" << seed;
    total_mispredicts += fast.mispredicts;
  }
  EXPECT_GT(total_mispredicts, 0u);
}

// ------------------------------------------------- directed flush drills

/// Branches renamed INSIDE a wrong-path episode (the flush must discard
/// them without consulting nested checkpoints): an alternating-outcome
/// conditional branch trains the bimodal counters into repeated
/// mispredicts whose wrong path immediately contains further conditional
/// and unconditional branches.
TEST(SpecEquivalence, NestedInFlightBranchesRecoverExactly) {
  asmx::program_builder b;
  b.load_constant(reg::r0, 0); // loop counter
  b.load_constant(reg::r1, 0); // accumulator A
  b.load_constant(reg::r2, 0); // accumulator B
  const std::uint32_t word = b.data_word(0x11223344);
  b.load_constant(reg::r10, word);

  // 24 unrolled iterations of: tst-like compare, conditional skip whose
  // taken-ness alternates, then a dense cluster of branches both paths
  // share.  The alternation defeats the 2-bit counters, so roughly every
  // other iteration renames its cluster down the wrong path first.
  for (int i = 0; i < 24; ++i) {
    b.emit(mk::dp_imm(isa::opcode::and_, reg::r3, reg::r0, 1));
    b.emit(mk::cmp_imm(reg::r3, 0));
    b.emit(mk::b(2, condition::eq));            // skip the next two
    b.emit(mk::dp_imm(isa::opcode::add, reg::r1, reg::r1, 3));
    b.emit(mk::b(1, condition::al));            // unconditional inside
    b.emit(mk::dp_imm(isa::opcode::add, reg::r2, reg::r2, 5));
    b.emit(mk::cmp_imm(reg::r1, 9));
    b.emit(mk::b(1, condition::lt));            // second conditional
    b.emit(mk::ldr(reg::r4, reg::r10, 0));
    b.emit(mk::dp_imm(isa::opcode::add, reg::r0, reg::r0, 1));
  }
  const asmx::program prog = b.build();

  const full_snapshot off =
      run_snapshot_of(prog, cortex_a7_ooo());
  for (const predictor_kind kind :
       {predictor_kind::static_btfn, predictor_kind::bimodal,
        predictor_kind::gshare}) {
    const full_snapshot on =
        run_snapshot_of(prog, cortex_a7_ooo_spec(spec_of(kind)));
    expect_same_arch(on.arch, off.arch, 0, predictor_kind_name(kind).data());
    EXPECT_GT(on.mispredicts, 0u) << predictor_kind_name(kind);
    // Determinism: the same run twice is bit-identical.
    const full_snapshot again =
        run_snapshot_of(prog, cortex_a7_ooo_spec(spec_of(kind)));
    EXPECT_EQ(again.cycles, on.cycles);
    EXPECT_EQ(again.activity, on.activity);
  }
}

/// Call chain deeper than the 8-entry RSB (overflow wraps), then more
/// returns than live entries (underflow pops stale slots): architectural
/// results still match the spec-off run, and the over/underflow behaviour
/// is deterministic.
TEST(SpecEquivalence, RsbOverflowAndUnderflowStayCorrect) {
  // fn(k) = bl fn(k+1) until depth 12, each frame saving lr to the stack
  // buffer; the return chain then unwinds through bx lr twelve times.
  constexpr int depth = 12; // > rsb_entries = 8
  asmx::program_builder b;
  const std::uint32_t stack = b.data_block(4 * (depth + 4), 4);
  b.load_constant(reg::r9, stack);
  b.load_constant(reg::r0, 0);

  // Layout: main calls frame 0 and then jumps over the whole chain to the
  // halt; each frame (4 instructions — save lr, bl next / leaf work,
  // restore lr, bx lr) calls the next one deeper.
  b.emit(mk::bl(1)); // frame 0 starts right after the jump below
  b.emit(mk::b(static_cast<std::int32_t>(4 * depth))); // over the chain
  for (int i = 0; i < depth; ++i) {
    b.emit(mk::str(reg::lr, reg::r9,
                   static_cast<std::uint32_t>(4 * i)));
    if (i + 1 < depth) {
      b.emit(mk::bl(2)); // next frame's first instruction
    } else {
      b.emit(mk::dp_imm(isa::opcode::add, reg::r0, reg::r0, 1)); // leaf
    }
    b.emit(mk::ldr(reg::lr, reg::r9,
                   static_cast<std::uint32_t>(4 * i)));
    b.emit(mk::bx(reg::lr));
  }
  const asmx::program prog = b.build();

  const full_snapshot off = run_snapshot_of(prog, cortex_a7_ooo());
  EXPECT_EQ(off.arch.regs[0], 1u); // the leaf ran exactly once

  speculation_config spec = spec_of(predictor_kind::bimodal);
  ASSERT_LT(spec.rsb_entries, depth);
  const full_snapshot on =
      run_snapshot_of(prog, cortex_a7_ooo_spec(spec));
  expect_same_arch(on.arch, off.arch, 0, "rsb overflow");
  // The 4 deepest wrapped-over frames return through stale RSB slots:
  // those returns mispredict, the flush recovers, results stay exact.
  EXPECT_GT(on.mispredicts, 0u);

  const full_snapshot again =
      run_snapshot_of(prog, cortex_a7_ooo_spec(spec));
  EXPECT_EQ(again.cycles, on.cycles);
  EXPECT_EQ(again.activity, on.activity);
}

// --------------------------------------------------- env knob + batching

TEST(SpecEnvKnob, ParsesStrictly) {
  EXPECT_EQ(parse_spec_predictor_env(nullptr), std::nullopt);
  EXPECT_EQ(parse_spec_predictor_env(""), std::nullopt);
  EXPECT_EQ(parse_spec_predictor_env("perfect"), predictor_kind::perfect);
  EXPECT_EQ(parse_spec_predictor_env("static"), predictor_kind::static_btfn);
  EXPECT_EQ(parse_spec_predictor_env("bimodal"), predictor_kind::bimodal);
  EXPECT_EQ(parse_spec_predictor_env("gshare"), predictor_kind::gshare);
  try {
    parse_spec_predictor_env("gshar");
    FAIL() << "expected simulation_error";
  } catch (const util::simulation_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gshar"), std::string::npos);
    EXPECT_NE(what.find("valid values"), std::string::npos);
    EXPECT_NE(what.find("bimodal"), std::string::npos);
  }
}

TEST(SpecEnvKnob, OverridesConfigLive) {
  ASSERT_EQ(setenv("USCA_SPEC_PREDICTOR", "gshare", 1), 0);
  {
    // A default (perfect) config now speculates...
    ooo_core core(crypto::generate_aes128_program().prog, cortex_a7_ooo());
    EXPECT_EQ(core.speculation().predictor, predictor_kind::gshare);
    EXPECT_TRUE(speculation_active(cortex_a7_ooo()));
  }
  ASSERT_EQ(setenv("USCA_SPEC_PREDICTOR", "perfect", 1), 0);
  {
    // ...and "perfect" forces speculation OFF even for a gshare config.
    const micro_arch_config arch =
        cortex_a7_ooo_spec(spec_of(predictor_kind::gshare));
    ooo_core core(crypto::generate_aes128_program().prog, arch);
    EXPECT_EQ(core.speculation().predictor, predictor_kind::perfect);
    EXPECT_FALSE(speculation_active(arch));
  }
  ASSERT_EQ(setenv("USCA_SPEC_PREDICTOR", "totally-bogus", 1), 0);
  EXPECT_THROW(speculation_active(cortex_a7_ooo()), util::simulation_error);
  ASSERT_EQ(unsetenv("USCA_SPEC_PREDICTOR"), 0);
  EXPECT_FALSE(speculation_active(cortex_a7_ooo()));
}

TEST(SpecValidation, RejectsOutOfRangeConfigs) {
  const auto check_throws = [](speculation_config spec) {
    spec.predictor = predictor_kind::bimodal;
    const micro_arch_config arch = cortex_a7_ooo_spec(spec);
    EXPECT_THROW(ooo_core(crypto::generate_aes128_program().prog, arch),
                 util::simulation_error);
  };
  speculation_config bad;
  bad.bp_table_bits = 1;
  check_throws(bad);
  bad = speculation_config{};
  bad.btb_entries = 48; // not a power of two
  check_throws(bad);
  bad = speculation_config{};
  bad.rsb_entries = 0;
  check_throws(bad);
  bad = speculation_config{};
  bad.resolve_latency = 0;
  check_throws(bad);

  // A real predictor is incompatible with the legacy penalty model.
  micro_arch_config arch =
      cortex_a7_ooo_spec(spec_of(predictor_kind::bimodal));
  arch.perfect_branch_prediction = false;
  EXPECT_THROW(ooo_core(crypto::generate_aes128_program().prog, arch),
               util::simulation_error);
}

// The branchy (non-constant-time) AES variant is the one victim whose
// branch directions are secret bits: every real predictor mispredicts
// on it, and none of that wrong-path traffic may touch the ciphertext.
TEST(SpecEquivalence, BranchyAesMispredictsWithoutCorruption) {
  const crypto::aes_program_layout layout =
      crypto::generate_aes128_branchy_program();
  const crypto::aes_key key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                               0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                               0x09, 0xcf, 0x4f, 0x3c};
  const crypto::aes_block pt = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a,
                                0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2,
                                0xe0, 0x37, 0x07, 0x34};
  for (const predictor_kind kind :
       {predictor_kind::static_btfn, predictor_kind::bimodal,
        predictor_kind::gshare}) {
    ooo_core core(layout.prog, cortex_a7_ooo_spec(spec_of(kind)));
    crypto::install_aes_inputs(core.memory(), layout,
                               crypto::expand_key(key), pt);
    core.warm_caches();
    core.run();
    EXPECT_EQ(crypto::read_aes_state(core.memory(), layout),
              crypto::encrypt_block(pt, key))
        << predictor_kind_name(kind);
    EXPECT_GT(core.mispredicts(), 0u) << predictor_kind_name(kind);
    EXPECT_GT(core.wrong_path_renamed(), 0u) << predictor_kind_name(kind);
  }
}

TEST(SpecBatching, BatchCoreRejectsSpeculativeConfigs) {
  const crypto::aes_program_layout layout = crypto::generate_aes128_program();
  const micro_arch_config arch =
      cortex_a7_ooo_spec(spec_of(predictor_kind::bimodal));
  try {
    batch_ooo_core batch(program_image(layout.prog), arch, 4);
    FAIL() << "expected simulation_error";
  } catch (const util::simulation_error& e) {
    EXPECT_NE(std::string(e.what()).find("speculation"), std::string::npos);
  }
  // The perfect design point batches as before.
  EXPECT_NO_THROW(batch_ooo_core(
      program_image(layout.prog),
      cortex_a7_ooo_spec(spec_of(predictor_kind::perfect)), 4));
}

// A speculative campaign silently takes the per-trace path and delivers
// records byte-identical to an explicit USCA_SIM_BATCH=0 run.
TEST(SpecBatching, CampaignFallsBackPerTraceByteIdentical) {
  core::campaign_config config;
  config.traces = 6;
  config.threads = 1;
  config.seed = 0x5becca3;
  config.backend = sim::backend_kind::ooo;
  config.uarch = cortex_a7_ooo_spec(spec_of(predictor_kind::gshare));
  config.sim_batch_lanes = -1; // would batch, were speculation off

  const crypto::aes_key key = golden_key;
  const auto collect = [&]() {
    core::trace_campaign campaign(config, key);
    std::vector<core::trace_record> records;
    campaign.run([&records](core::trace_record&& rec) {
      records.push_back(std::move(rec));
    });
    return records;
  };

  const std::vector<core::trace_record> fallback = collect();
  ASSERT_EQ(setenv("USCA_SIM_BATCH", "0", 1), 0);
  const std::vector<core::trace_record> per_trace = collect();
  ASSERT_EQ(unsetenv("USCA_SIM_BATCH"), 0);

  ASSERT_EQ(fallback.size(), per_trace.size());
  for (std::size_t i = 0; i < fallback.size(); ++i) {
    EXPECT_EQ(fallback[i].plaintext, per_trace[i].plaintext);
    EXPECT_EQ(fallback[i].cycles, per_trace[i].cycles);
    ASSERT_EQ(fallback[i].samples.size(), per_trace[i].samples.size());
    if (!fallback[i].samples.empty()) {
      EXPECT_EQ(std::memcmp(fallback[i].samples.data(),
                            per_trace[i].samples.data(),
                            fallback[i].samples.size() * sizeof(double)),
                0);
    }
  }
}

} // namespace
} // namespace usca::sim
