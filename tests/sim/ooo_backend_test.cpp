// Unit tests for the out-of-order issue backend: structural behaviour
// (rename/ROB/RS/retire), the reset()/rebind() zero-reallocation contract
// the campaign engines rely on, the new leakage components, mark/cutoff
// semantics, and the backend factory.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "asmx/program.h"
#include "crypto/aes128.h"
#include "crypto/aes_codegen.h"
#include "sim/backend.h"
#include "sim/functional_executor.h"
#include "sim/ooo/ooo_core.h"
#include "sim/pipeline.h"
#include "util/error.h"
#include "util/rng.h"

namespace usca::sim {
namespace {

using isa::reg;
namespace mk = isa::ins;

asmx::program marked_alu_program() {
  asmx::program_builder b;
  b.emit(mk::mark(1));
  b.emit(mk::eor(reg::r1, reg::r2, reg::r3));
  b.emit(mk::add(reg::r4, reg::r1, reg::r2));
  b.emit(mk::lsl(reg::r5, reg::r4, 2));
  b.emit(mk::mul(reg::r6, reg::r5, reg::r2));
  b.emit(mk::mark(2));
  b.emit(mk::halt());
  return b.build();
}

std::array<std::size_t, component_count>
component_histogram(const activity_trace& activity) {
  std::array<std::size_t, component_count> counts{};
  for (const activity_event& ev : activity) {
    ++counts[static_cast<std::size_t>(ev.comp)];
  }
  return counts;
}

TEST(OooBackend, ExecutesAluChainAndRecordsMarks) {
  ooo_core core(marked_alu_program());
  core.state().set_reg(reg::r2, 0x1234);
  core.state().set_reg(reg::r3, 0x9999);
  core.warm_caches();
  core.run(100'000);

  EXPECT_TRUE(core.state().halted);
  EXPECT_EQ(core.state().reg(reg::r1), 0x1234u ^ 0x9999u);
  EXPECT_EQ(core.instructions_issued(), 7u);
  EXPECT_EQ(core.instructions_retired(), 7u);
  ASSERT_EQ(core.marks().size(), 2u);
  EXPECT_EQ(core.marks()[0].id, 1u);
  EXPECT_EQ(core.marks()[1].id, 2u);
  EXPECT_LT(core.marks()[0].cycle, core.marks()[1].cycle);
}

TEST(OooBackend, EmitsTheOooLeakageComponents) {
  ooo_core core(marked_alu_program());
  core.state().set_reg(reg::r2, 0xdeadbeef);
  core.state().set_reg(reg::r3, 0x00ff00ff);
  core.warm_caches();
  core.run(100'000);

  const auto counts = component_histogram(core.activity());
  EXPECT_GT(counts[static_cast<std::size_t>(component::rat_port)], 0u);
  EXPECT_GT(counts[static_cast<std::size_t>(component::prf_read_port)], 0u);
  EXPECT_GT(counts[static_cast<std::size_t>(component::rs_tag_bus)], 0u);
  EXPECT_GT(counts[static_cast<std::size_t>(component::cdb)], 0u);
  EXPECT_GT(counts[static_cast<std::size_t>(component::rob_retire_port)], 0u);
  // Shared EX-stage structures still leak...
  EXPECT_GT(counts[static_cast<std::size_t>(component::alu_in_latch)], 0u);
  EXPECT_GT(counts[static_cast<std::size_t>(component::alu_out)], 0u);
  // ...but the in-order front-end/write-back structures do not exist here.
  EXPECT_EQ(counts[static_cast<std::size_t>(component::rf_read_port)], 0u);
  EXPECT_EQ(counts[static_cast<std::size_t>(component::is_ex_bus)], 0u);
  EXPECT_EQ(counts[static_cast<std::size_t>(component::wb_bus)], 0u);
  EXPECT_EQ(counts[static_cast<std::size_t>(component::ex_wb_latch)], 0u);
}

TEST(OooBackend, ResetRunsBitIdentically) {
  const program_image image(marked_alu_program());
  ooo_core core(image);
  const auto install = [](ooo_core& c) {
    c.state().set_reg(reg::r2, 0xcafe0001);
    c.state().set_reg(reg::r3, 0x12345678);
  };

  install(core);
  core.warm_caches();
  core.run();
  const activity_trace first = core.activity();
  const auto first_marks = core.marks();
  const std::uint64_t first_cycles = core.cycles();

  core.reset();
  install(core);
  core.warm_caches();
  core.run();

  EXPECT_EQ(core.cycles(), first_cycles);
  ASSERT_EQ(core.marks().size(), first_marks.size());
  for (std::size_t i = 0; i < first_marks.size(); ++i) {
    EXPECT_EQ(core.marks()[i].cycle, first_marks[i].cycle);
  }
  EXPECT_EQ(core.activity(), first);
}

TEST(OooBackend, RebindSwitchesPrograms) {
  asmx::program_builder other;
  other.emit(mk::mark(1));
  other.emit(mk::add_imm(reg::r1, reg::r1, 5));
  other.emit(mk::mark(2));
  other.emit(mk::halt());

  ooo_core core(marked_alu_program());
  core.warm_caches();
  core.run();
  const std::uint64_t alu_instructions = core.instructions_retired();

  core.rebind(program_image(other.build()));
  core.warm_caches();
  core.run();
  EXPECT_EQ(core.instructions_retired(), 4u);
  EXPECT_NE(core.instructions_retired(), alu_instructions);
  EXPECT_EQ(core.state().reg(reg::r1), 5u);
}

TEST(OooBackend, ActivityCutoffMarkStopsRecordingAfterWindow) {
  const program_image image(marked_alu_program());
  ooo_core reference(image);
  reference.state().set_reg(reg::r2, 0xabcd);
  reference.warm_caches();
  reference.run();

  ooo_core cut(image);
  cut.set_activity_cutoff_mark(2);
  cut.state().set_reg(reg::r2, 0xabcd);
  cut.warm_caches();
  cut.run();

  ASSERT_EQ(cut.marks().size(), 2u);
  const std::uint64_t window_end = cut.marks()[1].cycle;
  // Everything before the end mark is recorded bit-identically.
  for (const activity_event& ev : reference.activity()) {
    if (ev.cycle < window_end) {
      EXPECT_NE(std::find(cut.activity().begin(), cut.activity().end(), ev),
                cut.activity().end());
    }
  }
  // Nothing after the cutoff is.
  for (const activity_event& ev : cut.activity()) {
    EXPECT_LT(ev.cycle, window_end);
  }
}

TEST(OooBackend, StoreHeavyProgramDrainsThroughStoreBuffer) {
  asmx::program_builder b;
  const std::uint32_t buffer = b.data_block(64, 4);
  b.load_constant(reg::r10, buffer);
  for (int i = 0; i < 8; ++i) {
    b.emit(mk::str(reg::r10, reg::r10, static_cast<std::uint32_t>(4 * i)));
  }
  b.emit(mk::halt());
  const asmx::program prog = b.build();

  micro_arch_config tiny = cortex_a7_ooo();
  tiny.ooo.store_buffer_entries = 1; // every second commit stalls
  ooo_core core(prog, tiny);
  core.warm_caches();
  core.run(100'000);
  EXPECT_TRUE(core.state().halted);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(core.memory().read32(buffer + 4 * static_cast<std::uint32_t>(i)),
              buffer);
  }
}

TEST(OooBackend, MatchesFunctionalExecutorOnAes128) {
  const crypto::aes_program_layout layout = crypto::generate_aes128_program();
  const crypto::aes_key key = {0xde, 0xad, 0xbe, 0xef, 0x01, 0x23, 0x45, 0x67,
                               0x89, 0xab, 0xcd, 0xef, 0x10, 0x32, 0x54, 0x76};
  const crypto::aes_round_keys rk = crypto::expand_key(key);
  util::xoshiro256 rng(99);
  crypto::aes_block pt;
  for (auto& v : pt) {
    v = rng.next_u8();
  }

  ooo_core core(layout.prog);
  crypto::install_aes_inputs(core.memory(), layout, rk, pt);
  core.warm_caches();
  core.run();

  const crypto::aes_block expected = crypto::encrypt_block(pt, key);
  EXPECT_EQ(crypto::read_aes_state(core.memory(), layout), expected);
  // The OoO engine extracts instruction-level parallelism the in-order
  // pipeline cannot: the same program must finish in fewer cycles.
  pipeline pipe(layout.prog);
  crypto::install_aes_inputs(pipe.memory(), layout, rk, pt);
  pipe.warm_caches();
  pipe.run();
  EXPECT_LT(core.cycles(), pipe.cycles());
}

TEST(OooBackend, FactoryAndKindNamesRoundTrip) {
  EXPECT_EQ(parse_backend_kind("inorder"), backend_kind::inorder);
  EXPECT_EQ(parse_backend_kind("ooo"), backend_kind::ooo);
  EXPECT_EQ(parse_backend_kind("out-of-order"), backend_kind::ooo);
  EXPECT_FALSE(parse_backend_kind("tso").has_value());
  EXPECT_EQ(backend_kind_name(backend_kind::ooo), "ooo");

  const program_image image(marked_alu_program());
  const auto inorder =
      make_backend(backend_kind::inorder, image, cortex_a7());
  const auto ooo = make_backend(backend_kind::ooo, image, cortex_a7_ooo());
  EXPECT_EQ(inorder->kind(), backend_kind::inorder);
  EXPECT_EQ(ooo->kind(), backend_kind::ooo);
  ooo->warm_caches();
  ooo->run();
  EXPECT_TRUE(ooo->state().halted);
}

TEST(OooBackend, RejectsStructurallyInvalidConfigs) {
  micro_arch_config bad = cortex_a7_ooo();
  bad.ooo.prf_size = 16; // no rename headroom
  EXPECT_THROW(ooo_core(marked_alu_program(), bad), util::simulation_error);

  micro_arch_config zero_rob = cortex_a7_ooo();
  zero_rob.ooo.rob_entries = 1;
  EXPECT_THROW(ooo_core(marked_alu_program(), zero_rob),
               util::simulation_error);
}

} // namespace
} // namespace usca::sim
