// Random AL32 program generation shared by the differential test suites.
//
// Programs draw from the full data-processing/memory/branch/multiply
// repertoire — including register-offset, shifted-offset and
// subtract-addressed memory operands — keep r10 reserved as the memory
// base of a small aligned buffer (r11 = a bounded word index, r12 = one
// past the buffer end), and occasionally insert short forward
// conditional branches: enough surface to shake out semantic divergence
// between the functional executor and the cycle-level backends without
// ever leaving the buffer.
#ifndef USCA_TESTS_SIM_RANDOM_PROGRAM_H
#define USCA_TESTS_SIM_RANDOM_PROGRAM_H

#include "asmx/program.h"
#include "util/rng.h"

namespace usca::sim::testing {

constexpr std::uint32_t random_program_buffer_words = 16;

inline isa::reg random_reg(util::xoshiro256& rng) {
  // r0..r7: general scratch (r10 is reserved as the memory base).
  return isa::reg_from_index(static_cast<std::uint8_t>(rng.bounded(8)));
}

inline isa::instruction random_instruction(util::xoshiro256& rng) {
  using isa::condition;
  using isa::instruction;
  using isa::opcode;
  using isa::reg;
  namespace mk = isa::ins;
  constexpr std::uint32_t buffer_words = random_program_buffer_words;

  switch (rng.bounded(15)) {
  case 0: { // dp reg
    static constexpr opcode ops[] = {opcode::mov, opcode::mvn, opcode::add,
                                     opcode::adc, opcode::sub, opcode::sbc,
                                     opcode::rsb, opcode::and_, opcode::orr,
                                     opcode::eor, opcode::bic};
    const opcode op = ops[rng.bounded(std::size(ops))];
    if (op == opcode::mov || op == opcode::mvn) {
      return mk::mov(random_reg(rng), random_reg(rng));
    }
    instruction i = mk::dp(op, random_reg(rng), random_reg(rng),
                           random_reg(rng));
    i.set_flags = rng.bounded(4) == 0;
    return i;
  }
  case 1: { // dp imm
    instruction i = mk::dp_imm(rng.bounded(2) ? opcode::add : opcode::eor,
                               random_reg(rng), random_reg(rng),
                               static_cast<std::uint32_t>(rng.bounded(256)));
    i.set_flags = rng.bounded(4) == 0;
    return i;
  }
  case 2: { // shifted operand
    return mk::dp_shift(rng.bounded(2) ? opcode::add : opcode::orr,
                        random_reg(rng), random_reg(rng), random_reg(rng),
                        static_cast<isa::shift_kind>(rng.bounded(4)),
                        static_cast<std::uint8_t>(rng.bounded(32)));
  }
  case 3: { // shift by register
    instruction i = mk::dp(opcode::add, random_reg(rng), random_reg(rng),
                           random_reg(rng));
    i.op2.shift.by_register = true;
    i.op2.shift.kind = static_cast<isa::shift_kind>(rng.bounded(4));
    i.op2.shift.amount_reg = random_reg(rng);
    return i;
  }
  case 4: // compare
    return rng.bounded(2) ? mk::cmp(random_reg(rng), random_reg(rng))
                          : mk::cmp_imm(random_reg(rng),
                                        static_cast<std::uint32_t>(
                                            rng.bounded(256)));
  case 5: { // conditional mov (consumes flags)
    static constexpr condition conds[] = {condition::eq, condition::ne,
                                          condition::cs, condition::cc,
                                          condition::ge, condition::lt};
    return mk::mov(random_reg(rng), random_reg(rng),
                   conds[rng.bounded(std::size(conds))]);
  }
  case 6: // multiply
    return rng.bounded(2)
               ? mk::mul(random_reg(rng), random_reg(rng), random_reg(rng))
               : mk::mla(random_reg(rng), random_reg(rng), random_reg(rng),
                         random_reg(rng));
  case 7: { // word load/store
    const auto offset =
        static_cast<std::uint32_t>(4 * rng.bounded(buffer_words));
    return rng.bounded(2) ? mk::ldr(random_reg(rng), reg::r10, offset)
                          : mk::str(random_reg(rng), reg::r10, offset);
  }
  case 8: { // byte load/store
    const auto offset =
        static_cast<std::uint32_t>(rng.bounded(4 * buffer_words));
    return rng.bounded(2) ? mk::ldrb(random_reg(rng), reg::r10, offset)
                          : mk::strb(random_reg(rng), reg::r10, offset);
  }
  case 9: { // halfword load/store
    const auto offset =
        static_cast<std::uint32_t>(2 * rng.bounded(2 * buffer_words));
    return rng.bounded(2) ? mk::ldrh(random_reg(rng), reg::r10, offset)
                          : mk::strh(random_reg(rng), reg::r10, offset);
  }
  case 10: // wide moves
    return rng.bounded(2)
               ? mk::movw(random_reg(rng),
                          static_cast<std::uint16_t>(rng.bounded(65536)))
               : mk::movt(random_reg(rng),
                          static_cast<std::uint16_t>(rng.bounded(65536)));
  case 11: // register-offset word access: [r10, r11, lsl #2]
    return rng.bounded(2) ? mk::ldr_reg(random_reg(rng), reg::r10,
                                        reg::r11, 2)
                          : mk::str_reg(random_reg(rng), reg::r10,
                                        reg::r11, 2);
  case 12: // register-offset byte access: [r10, r11]
    return rng.bounded(2) ? mk::ldrb_reg(random_reg(rng), reg::r10,
                                         reg::r11)
                          : mk::strb_reg(random_reg(rng), reg::r10,
                                         reg::r11);
  case 13: { // subtract-addressed word access: [r12, #-imm]
    const auto offset =
        static_cast<std::uint32_t>(4 * (1 + rng.bounded(buffer_words)));
    instruction i = rng.bounded(2)
                        ? mk::ldr(random_reg(rng), reg::r12, offset)
                        : mk::str(random_reg(rng), reg::r12, offset);
    i.mem.subtract = true;
    return i;
  }
  default:
    return mk::nop();
  }
}

/// A random straight-line-ish program: a data buffer bound to r10, the
/// buffer symbol exported as "buffer", occasional short forward
/// conditional branches.
inline asmx::program random_program(util::xoshiro256& rng, int length) {
  using isa::condition;
  namespace mk = isa::ins;
  asmx::program_builder b;
  const std::uint32_t buffer =
      b.data_block(4 * random_program_buffer_words, 4);
  b.load_constant(isa::reg::r10, buffer);
  // r11: bounded word index for register-offset addressing; r12: one past
  // the buffer end for subtract addressing.  Both stay within the buffer
  // because random_reg never yields them as destinations.
  b.load_constant(isa::reg::r11, static_cast<std::uint32_t>(
                                     rng.bounded(random_program_buffer_words)));
  b.load_constant(isa::reg::r12,
                  buffer + 4 * random_program_buffer_words);
  for (int i = 0; i < length; ++i) {
    // Occasionally insert a short forward conditional branch.
    if (rng.bounded(12) == 0 && length - i > 4) {
      const auto skip = static_cast<std::int32_t>(rng.bounded(3));
      static constexpr condition conds[] = {condition::eq, condition::ne,
                                            condition::al, condition::cs};
      b.emit(mk::b(skip, conds[rng.bounded(std::size(conds))]));
    }
    b.emit(random_instruction(rng));
  }
  b.define_symbol("buffer", buffer);
  return b.build();
}

} // namespace usca::sim::testing

#endif // USCA_TESTS_SIM_RANDOM_PROGRAM_H
