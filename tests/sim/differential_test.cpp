// Differential testing: the pipeline model must be architecturally
// indistinguishable from the functional reference executor on randomly
// generated programs (same final registers, flags and memory), for every
// micro-architecture configuration.  This pins the separation of concerns
// the whole library rests on: micro-architecture changes timing and
// leakage, never semantics.  (The OoO backend has its own differential
// suite in ooo_differential_test.cpp, sharing the program generator.)
#include <gtest/gtest.h>

#include "asmx/program.h"
#include "sim/functional_executor.h"
#include "sim/pipeline.h"
#include "random_program.h"
#include "util/rng.h"

namespace usca::sim {
namespace {

using isa::reg;
using testing::random_program;
using testing::random_program_buffer_words;

struct differential_case {
  std::uint64_t seed;
  bool scalar;
};

class DifferentialTest
    : public ::testing::TestWithParam<differential_case> {};

TEST_P(DifferentialTest, PipelineMatchesReferenceExecutor) {
  const differential_case param = GetParam();
  util::xoshiro256 rng(param.seed);
  for (int round = 0; round < 25; ++round) {
    const asmx::program prog = random_program(rng, 60);

    functional_executor iss(prog);
    pipeline pipe(prog, param.scalar ? cortex_a7_scalar() : cortex_a7());
    // Identical random initial register state.
    for (int r = 0; r < 8; ++r) {
      const std::uint32_t v = rng.next_u32();
      iss.state().regs[static_cast<std::size_t>(r)] = v;
      pipe.state().regs[static_cast<std::size_t>(r)] = v;
    }
    iss.state().set_reg(reg::r10, *prog.symbol("buffer"));
    pipe.state().set_reg(reg::r10, *prog.symbol("buffer"));
    pipe.warm_caches();

    iss.run();
    pipe.run();

    for (int r = 0; r < 13; ++r) {
      ASSERT_EQ(iss.state().regs[static_cast<std::size_t>(r)],
                pipe.state().regs[static_cast<std::size_t>(r)])
          << "seed=" << param.seed << " round=" << round << " reg=r" << r;
    }
    ASSERT_EQ(iss.state().f, pipe.state().f)
        << "seed=" << param.seed << " round=" << round;
    const std::uint32_t buffer = *prog.symbol("buffer");
    for (std::uint32_t w = 0; w < random_program_buffer_words; ++w) {
      ASSERT_EQ(iss.memory().read32(buffer + 4 * w),
                pipe.memory().read32(buffer + 4 * w))
          << "seed=" << param.seed << " round=" << round << " word=" << w;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomPrograms, DifferentialTest,
    ::testing::Values(differential_case{101, false},
                      differential_case{202, false},
                      differential_case{303, false},
                      differential_case{404, false},
                      differential_case{505, true},
                      differential_case{606, true}));

} // namespace
} // namespace usca::sim
