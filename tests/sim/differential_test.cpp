// Differential testing: the pipeline model must be architecturally
// indistinguishable from the functional reference executor on randomly
// generated programs (same final registers, flags and memory), for every
// micro-architecture configuration.  This pins the separation of concerns
// the whole library rests on: micro-architecture changes timing and
// leakage, never semantics.
#include <gtest/gtest.h>

#include "asmx/program.h"
#include "sim/functional_executor.h"
#include "sim/pipeline.h"
#include "util/rng.h"

namespace usca::sim {
namespace {

using isa::condition;
using isa::instruction;
using isa::opcode;
using isa::reg;
namespace mk = isa::ins;

constexpr std::uint32_t buffer_words = 16;

reg random_reg(util::xoshiro256& rng) {
  // r0..r7: general scratch (r10 is reserved as the memory base).
  return isa::reg_from_index(static_cast<std::uint8_t>(rng.bounded(8)));
}

instruction random_instruction(util::xoshiro256& rng) {
  switch (rng.bounded(12)) {
  case 0: { // dp reg
    static constexpr opcode ops[] = {opcode::mov, opcode::mvn, opcode::add,
                                     opcode::adc, opcode::sub, opcode::sbc,
                                     opcode::rsb, opcode::and_, opcode::orr,
                                     opcode::eor, opcode::bic};
    const opcode op = ops[rng.bounded(std::size(ops))];
    if (op == opcode::mov || op == opcode::mvn) {
      return mk::mov(random_reg(rng), random_reg(rng));
    }
    instruction i = mk::dp(op, random_reg(rng), random_reg(rng),
                           random_reg(rng));
    i.set_flags = rng.bounded(4) == 0;
    return i;
  }
  case 1: { // dp imm
    instruction i = mk::dp_imm(rng.bounded(2) ? opcode::add : opcode::eor,
                               random_reg(rng), random_reg(rng),
                               static_cast<std::uint32_t>(rng.bounded(256)));
    i.set_flags = rng.bounded(4) == 0;
    return i;
  }
  case 2: { // shifted operand
    return mk::dp_shift(rng.bounded(2) ? opcode::add : opcode::orr,
                        random_reg(rng), random_reg(rng), random_reg(rng),
                        static_cast<isa::shift_kind>(rng.bounded(4)),
                        static_cast<std::uint8_t>(rng.bounded(32)));
  }
  case 3: { // shift by register
    instruction i = mk::dp(opcode::add, random_reg(rng), random_reg(rng),
                           random_reg(rng));
    i.op2.shift.by_register = true;
    i.op2.shift.kind = static_cast<isa::shift_kind>(rng.bounded(4));
    i.op2.shift.amount_reg = random_reg(rng);
    return i;
  }
  case 4: // compare
    return rng.bounded(2) ? mk::cmp(random_reg(rng), random_reg(rng))
                          : mk::cmp_imm(random_reg(rng),
                                        static_cast<std::uint32_t>(
                                            rng.bounded(256)));
  case 5: { // conditional mov (consumes flags)
    static constexpr condition conds[] = {condition::eq, condition::ne,
                                          condition::cs, condition::cc,
                                          condition::ge, condition::lt};
    return mk::mov(random_reg(rng), random_reg(rng),
                   conds[rng.bounded(std::size(conds))]);
  }
  case 6: // multiply
    return rng.bounded(2)
               ? mk::mul(random_reg(rng), random_reg(rng), random_reg(rng))
               : mk::mla(random_reg(rng), random_reg(rng), random_reg(rng),
                         random_reg(rng));
  case 7: { // word load/store
    const auto offset =
        static_cast<std::uint32_t>(4 * rng.bounded(buffer_words));
    return rng.bounded(2) ? mk::ldr(random_reg(rng), reg::r10, offset)
                          : mk::str(random_reg(rng), reg::r10, offset);
  }
  case 8: { // byte load/store
    const auto offset =
        static_cast<std::uint32_t>(rng.bounded(4 * buffer_words));
    return rng.bounded(2) ? mk::ldrb(random_reg(rng), reg::r10, offset)
                          : mk::strb(random_reg(rng), reg::r10, offset);
  }
  case 9: { // halfword load/store
    const auto offset =
        static_cast<std::uint32_t>(2 * rng.bounded(2 * buffer_words));
    return rng.bounded(2) ? mk::ldrh(random_reg(rng), reg::r10, offset)
                          : mk::strh(random_reg(rng), reg::r10, offset);
  }
  case 10: // wide moves
    return rng.bounded(2)
               ? mk::movw(random_reg(rng),
                          static_cast<std::uint16_t>(rng.bounded(65536)))
               : mk::movt(random_reg(rng),
                          static_cast<std::uint16_t>(rng.bounded(65536)));
  default:
    return mk::nop();
  }
}

asmx::program random_program(util::xoshiro256& rng, int length) {
  asmx::program_builder b;
  const std::uint32_t buffer = b.data_block(4 * buffer_words, 4);
  b.load_constant(reg::r10, buffer);
  for (int i = 0; i < length; ++i) {
    // Occasionally insert a short forward conditional branch.
    if (rng.bounded(12) == 0 && length - i > 4) {
      const auto skip = static_cast<std::int32_t>(rng.bounded(3));
      static constexpr condition conds[] = {condition::eq, condition::ne,
                                            condition::al, condition::cs};
      b.emit(mk::b(skip, conds[rng.bounded(std::size(conds))]));
    }
    b.emit(random_instruction(rng));
  }
  b.define_symbol("buffer", buffer);
  return b.build();
}

struct differential_case {
  std::uint64_t seed;
  bool scalar;
};

class DifferentialTest
    : public ::testing::TestWithParam<differential_case> {};

TEST_P(DifferentialTest, PipelineMatchesReferenceExecutor) {
  const differential_case param = GetParam();
  util::xoshiro256 rng(param.seed);
  for (int round = 0; round < 25; ++round) {
    const asmx::program prog = random_program(rng, 60);

    functional_executor iss(prog);
    pipeline pipe(prog, param.scalar ? cortex_a7_scalar() : cortex_a7());
    // Identical random initial register state.
    for (int r = 0; r < 8; ++r) {
      const std::uint32_t v = rng.next_u32();
      iss.state().regs[static_cast<std::size_t>(r)] = v;
      pipe.state().regs[static_cast<std::size_t>(r)] = v;
    }
    iss.state().set_reg(reg::r10, *prog.symbol("buffer"));
    pipe.state().set_reg(reg::r10, *prog.symbol("buffer"));
    pipe.warm_caches();

    iss.run();
    pipe.run();

    for (int r = 0; r < 13; ++r) {
      ASSERT_EQ(iss.state().regs[static_cast<std::size_t>(r)],
                pipe.state().regs[static_cast<std::size_t>(r)])
          << "seed=" << param.seed << " round=" << round << " reg=r" << r;
    }
    ASSERT_EQ(iss.state().f, pipe.state().f)
        << "seed=" << param.seed << " round=" << round;
    const std::uint32_t buffer = *prog.symbol("buffer");
    for (std::uint32_t w = 0; w < buffer_words; ++w) {
      ASSERT_EQ(iss.memory().read32(buffer + 4 * w),
                pipe.memory().read32(buffer + 4 * w))
          << "seed=" << param.seed << " round=" << round << " word=" << w;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomPrograms, DifferentialTest,
    ::testing::Values(differential_case{101, false},
                      differential_case{202, false},
                      differential_case{303, false},
                      differential_case{404, false},
                      differential_case{505, true},
                      differential_case{606, true}));

} // namespace
} // namespace usca::sim
