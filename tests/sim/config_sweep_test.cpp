// Parameterized sweeps over micro-architecture configurations: semantics
// must be invariant (differential vs the reference executor) while timing
// must order sensibly (more resources never slow execution down).
#include <gtest/gtest.h>

#include "asmx/program.h"
#include "crypto/aes_codegen.h"
#include "sim/functional_executor.h"
#include "sim/pipeline.h"
#include "util/rng.h"

namespace usca::sim {
namespace {

using isa::reg;
namespace mk = isa::ins;

struct config_case {
  const char* name;
  micro_arch_config config;
};

std::vector<config_case> sweep_configs() {
  std::vector<config_case> out;
  out.push_back({"cortex_a7", cortex_a7()});
  out.push_back({"scalar", cortex_a7_scalar()});
  {
    micro_arch_config c = cortex_a7();
    c.policy = issue_policy::structural;
    out.push_back({"structural_policy", c});
  }
  {
    micro_arch_config c = cortex_a7();
    c.lsu_pipelined = false;
    c.mul_pipelined = false;
    out.push_back({"unpipelined_units", c});
  }
  {
    micro_arch_config c = cortex_a7();
    c.perfect_branch_prediction = false;
    c.branch_mispredict_penalty = 7;
    out.push_back({"mispredicting", c});
  }
  {
    micro_arch_config c = cortex_a7();
    c.nop_drives_zero_operands = false;
    c.nop_zeroes_wb_bus = false;
    c.alu_latch_holds_on_idle = false;
    c.has_align_buffer = false;
    out.push_back({"leakage_features_off", c});
  }
  {
    micro_arch_config c = cortex_a7();
    c.pair_aligned_fetch_only = false;
    out.push_back({"unaligned_pairing", c});
  }
  return out;
}

class ConfigSweep : public ::testing::TestWithParam<config_case> {};

TEST_P(ConfigSweep, AesSemanticsInvariant) {
  const crypto::aes_program_layout layout = crypto::generate_aes128_program();
  util::xoshiro256 rng(99);
  crypto::aes_key key;
  crypto::aes_block pt;
  for (auto& b : key) {
    b = rng.next_u8();
  }
  for (auto& b : pt) {
    b = rng.next_u8();
  }
  pipeline pipe(layout.prog, GetParam().config);
  pipe.set_record_activity(false);
  crypto::install_aes_inputs(pipe.memory(), layout, crypto::expand_key(key),
                             pt);
  pipe.warm_caches();
  pipe.run();
  EXPECT_EQ(crypto::read_aes_state(pipe.memory(), layout),
            crypto::encrypt_block(pt, key))
      << GetParam().name;
}

TEST_P(ConfigSweep, MixedWorkloadMatchesReferenceExecutor) {
  asmx::program_builder b;
  const std::uint32_t buffer = b.data_block(64, 4);
  b.load_constant(reg::r10, buffer);
  b.load_constant(reg::r0, 0x1234abcd);
  b.load_constant(reg::r1, 17);
  const auto loop = b.size();
  b.emit(mk::eor(reg::r2, reg::r0, reg::r1));
  b.emit(mk::dp_shift(isa::opcode::add, reg::r0, reg::r0, reg::r2,
                      isa::shift_kind::ror, 5));
  b.emit(mk::and_imm(reg::r3, reg::r0, 0x3c));
  b.emit(mk::str_reg(reg::r0, reg::r10, reg::r3));
  b.emit(mk::ldrb_reg(reg::r4, reg::r10, reg::r3));
  b.emit(mk::mul(reg::r5, reg::r4, reg::r1));
  isa::instruction dec = mk::sub_imm(reg::r1, reg::r1, 1);
  dec.set_flags = true;
  b.emit(dec);
  b.emit(mk::b(static_cast<std::int32_t>(loop) -
                   static_cast<std::int32_t>(b.size()) - 1,
               isa::condition::ne));
  const asmx::program prog = b.build();

  functional_executor iss(prog);
  iss.run();
  pipeline pipe(prog, GetParam().config);
  pipe.set_record_activity(false);
  pipe.warm_caches();
  pipe.run();
  for (int r = 0; r < 6; ++r) {
    EXPECT_EQ(iss.state().regs[static_cast<std::size_t>(r)],
              pipe.state().regs[static_cast<std::size_t>(r)])
        << GetParam().name << " r" << r;
  }
  EXPECT_EQ(iss.state().f, pipe.state().f) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(Configs, ConfigSweep,
                         ::testing::ValuesIn(sweep_configs()),
                         [](const ::testing::TestParamInfo<config_case>& i) {
                           return std::string(i.param.name);
                         });

TEST(ConfigOrdering, MoreResourcesNeverSlower) {
  const crypto::aes_program_layout layout = crypto::generate_aes128_program();
  const auto cycles_with = [&](const micro_arch_config& config) {
    pipeline pipe(layout.prog, config);
    pipe.set_record_activity(false);
    crypto::install_aes_inputs(pipe.memory(), layout,
                               crypto::expand_key(crypto::aes_key{}),
                               crypto::aes_block{});
    pipe.warm_caches();
    pipe.run();
    return pipe.cycles();
  };
  const std::uint64_t dual = cycles_with(cortex_a7());
  const std::uint64_t scalar = cycles_with(cortex_a7_scalar());
  micro_arch_config slow_units = cortex_a7();
  slow_units.lsu_pipelined = false;
  slow_units.mul_pipelined = false;
  const std::uint64_t unpipelined = cycles_with(slow_units);
  micro_arch_config structural = cortex_a7();
  structural.policy = issue_policy::structural;
  const std::uint64_t ideal = cycles_with(structural);

  EXPECT_LE(dual, scalar);
  EXPECT_LE(dual, unpipelined);
  // A purely structural issue stage can only pair more, never less.
  EXPECT_LE(ideal, dual);
}

} // namespace
} // namespace usca::sim
