// Differential fuzzing of the two OoO scheduler implementations.
//
// The fast scheduler (ready bitmasks, tag-indexed wakeup, constant-time
// CDB arbitration, idle-cycle skip) claims absolute bit-identity with the
// reference per-cycle linear scans: identical retirement order, identical
// architectural state, and an identical 14-component activity stream at
// every cycle.  That contract is what makes the scheduler rewrite
// trustworthy — the synthesizer's power model is driven directly by the
// activity stream, so any divergence silently changes every downstream
// trace.  This suite enforces it on hundreds of seeded random programs
// across the default engine and the stress-sweep shapes, plus a directed
// regression for the classic wakeup/select hazard.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

#include "asmx/program.h"
#include "random_program.h"
#include "sim/ooo/ooo_core.h"
#include "util/rng.h"

namespace usca::sim {
namespace {

using isa::reg;
using testing::random_program;
using testing::random_program_buffer_words;

/// Everything the equivalence contract covers, snapshotted after a run.
struct run_snapshot {
  std::array<std::uint32_t, 16> regs{};
  isa::flags flags;
  std::vector<std::uint32_t> buffer_words;
  std::uint64_t cycles = 0;
  std::uint64_t renamed = 0;
  std::uint64_t retired = 0;
  std::uint64_t multi_rename_cycles = 0;
  std::vector<mark_stamp> marks;
  activity_trace activity;
};

run_snapshot run_program(const asmx::program& prog,
                         const micro_arch_config& arch,
                         const std::array<std::uint32_t, 8>& inputs,
                         std::uint32_t index_r11) {
  ooo_core core(prog, arch);
  for (std::size_t r = 0; r < inputs.size(); ++r) {
    core.state().regs[r] = inputs[r];
  }
  const std::uint32_t buffer = *prog.symbol("buffer");
  core.state().set_reg(reg::r10, buffer);
  core.state().set_reg(reg::r11, index_r11);
  core.state().set_reg(reg::r12, buffer + 4 * random_program_buffer_words);
  core.warm_caches();
  core.run();

  run_snapshot snap;
  snap.regs = core.state().regs;
  snap.flags = core.state().f;
  snap.buffer_words.reserve(random_program_buffer_words);
  for (std::uint32_t w = 0; w < random_program_buffer_words; ++w) {
    snap.buffer_words.push_back(core.memory().read32(buffer + 4 * w));
  }
  snap.cycles = core.cycles();
  snap.renamed = core.instructions_issued();
  snap.retired = core.instructions_retired();
  snap.multi_rename_cycles = core.multi_rename_cycles();
  snap.marks = core.marks();
  snap.activity = core.activity();
  return snap;
}

void expect_identical(const run_snapshot& fast, const run_snapshot& ref,
                      std::uint64_t seed) {
  ASSERT_EQ(fast.regs, ref.regs) << "seed=" << seed;
  ASSERT_EQ(fast.flags, ref.flags) << "seed=" << seed;
  ASSERT_EQ(fast.buffer_words, ref.buffer_words) << "seed=" << seed;
  ASSERT_EQ(fast.cycles, ref.cycles) << "seed=" << seed;
  ASSERT_EQ(fast.renamed, ref.renamed) << "seed=" << seed;
  ASSERT_EQ(fast.retired, ref.retired) << "seed=" << seed;
  ASSERT_EQ(fast.multi_rename_cycles, ref.multi_rename_cycles)
      << "seed=" << seed;
  ASSERT_EQ(fast.marks.size(), ref.marks.size()) << "seed=" << seed;
  for (std::size_t m = 0; m < fast.marks.size(); ++m) {
    ASSERT_EQ(fast.marks[m].id, ref.marks[m].id) << "seed=" << seed;
    ASSERT_EQ(fast.marks[m].cycle, ref.marks[m].cycle) << "seed=" << seed;
    ASSERT_EQ(fast.marks[m].dual_pairs, ref.marks[m].dual_pairs)
        << "seed=" << seed;
  }
  // vector<activity_event>::operator== — cycle-exact, order-exact.
  ASSERT_EQ(fast.activity, ref.activity) << "seed=" << seed;
}

struct equivalence_case {
  const char* name;
  std::uint64_t seed_base;
  ooo_config ooo;
};

class OooEquivalenceFuzzTest
    : public ::testing::TestWithParam<equivalence_case> {};

TEST_P(OooEquivalenceFuzzTest, FastSchedulerIsBitIdenticalToReference) {
  const equivalence_case param = GetParam();

  micro_arch_config fast_arch = cortex_a7_ooo(param.ooo);
  micro_arch_config ref_arch = fast_arch;
  ref_arch.ooo.scheduler = ooo_scheduler::reference;
  ASSERT_EQ(fast_arch.ooo.scheduler, ooo_scheduler::fast);

  constexpr int programs = 200;
  for (int p = 0; p < programs; ++p) {
    const std::uint64_t seed = param.seed_base + static_cast<std::uint64_t>(p);
    util::xoshiro256 rng(seed);
    // Vary program length so short drains and long structural-pressure
    // runs are both covered.
    const int length = 20 + static_cast<int>(rng.bounded(60));
    const asmx::program prog = random_program(rng, length);
    std::array<std::uint32_t, 8> inputs;
    for (auto& v : inputs) {
      v = rng.next_u32();
    }
    const auto index_r11 =
        static_cast<std::uint32_t>(rng.bounded(random_program_buffer_words));

    const run_snapshot fast = run_program(prog, fast_arch, inputs, index_r11);
    const run_snapshot ref = run_program(prog, ref_arch, inputs, index_r11);
    expect_identical(fast, ref, seed);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomPrograms, OooEquivalenceFuzzTest,
    ::testing::Values(
        // The paper-facing design point.
        equivalence_case{"default", 0xe0'0001, ooo_config{}},
        // Tiny machine: 4-entry ROB, scalar rename/retire/CDB, 2 RS
        // entries — every structural stall path, constant wrap-around of
        // the age ring at minimal occupancy.
        equivalence_case{"tiny", 0xe0'2000,
                         ooo_config{4, 1, 1, 2, 24, 1, 1}},
        // Wide machine at the 64-entry sizing cap: deep ROB/RS, 4-wide
        // rename/retire/CDB — maximal in-flight window, full-ring
        // occupancy, multi-lane CDB arbitration.
        equivalence_case{"wide", 0xe0'4000,
                         ooo_config{64, 4, 4, 32, 128, 4, 8}}),
    [](const ::testing::TestParamInfo<equivalence_case>& info) {
      return info.param.name;
    });

// Regression: same-cycle wakeup + select of a µop whose LAST outstanding
// operand arrives on the FINAL CDB slot of the cycle.  The reference
// linear scan covers this implicitly (every lane's broadcast rewrites the
// full RS before select runs); the waiter-list rewrite must deliver the
// final lane's wakeups — and set the ready-ring bit — before the select
// stage of the same cycle, or the consumer issues a cycle late.
TEST(OooSameCycleWakeup, LastOperandOnFinalCdbSlotIssuesSameCycle) {
  namespace mk = isa::ins;

  micro_arch_config fast_arch = cortex_a7_ooo(); // cdb_width = 2
  micro_arch_config ref_arch = fast_arch;
  ref_arch.ooo.scheduler = ooo_scheduler::reference;

  // mul (3-cycle) and a later add (1-cycle) complete in the same cycle
  // and broadcast together: the mul — older — takes lane 0, the add takes
  // lane 1, the final CDB slot.  The consumer needs both, so its last
  // operand arrives on that final slot.  The exact alignment depends on
  // rename-width timing, so search over a small filler range and require
  // that the scenario actually fires at least once.
  bool scenario_covered = false;
  for (int fillers = 0; fillers <= 6; ++fillers) {
    asmx::program_builder b;
    b.load_constant(reg::r1, 0x1234);
    b.load_constant(reg::r2, 0x057);
    b.load_constant(reg::r4, 0xbeef);
    b.load_constant(reg::r5, 0x0111);
    b.emit(mk::mul(reg::r0, reg::r1, reg::r2)); // producer A (slow)
    for (int i = 0; i < fillers; ++i) {
      b.emit(mk::nop());
    }
    b.emit(mk::add(reg::r3, reg::r4, reg::r5)); // producer B (fast)
    b.emit(mk::add(reg::r6, reg::r0, reg::r3)); // consumer: needs A and B
    b.emit(mk::halt());
    const asmx::program prog = b.build();

    ooo_core fast(prog, fast_arch);
    fast.warm_caches();
    fast.run();
    ooo_core ref(prog, ref_arch);
    ref.warm_caches();
    ref.run();

    // Bit-identity holds at every alignment, whether or not the
    // double-broadcast lined up.
    ASSERT_EQ(fast.activity(), ref.activity()) << "fillers=" << fillers;
    ASSERT_EQ(fast.cycles(), ref.cycles()) << "fillers=" << fillers;
    ASSERT_EQ(fast.state().regs, ref.state().regs) << "fillers=" << fillers;
    EXPECT_EQ(fast.state().regs[6], 0x1234u * 0x57u + 0xbeefu + 0x111u);

    // Did both producers broadcast in one cycle?  Count CDB events per
    // cycle; the consumer is the last CDB broadcast of the program, so
    // same-cycle wakeup+select means it lands exactly two cycles after
    // the double broadcast (select at C, 1-cycle ALU completes at C+1,
    // broadcast at C+1 — one cycle for its own CDB trip).
    std::uint32_t double_cycle = 0;
    bool found_double = false;
    std::uint32_t last_cdb_cycle = 0;
    for (const activity_event& ev : fast.activity()) {
      if (ev.comp != component::cdb) {
        continue;
      }
      last_cdb_cycle = std::max(last_cdb_cycle, ev.cycle);
      for (const activity_event& other : fast.activity()) {
        if (&other != &ev && other.comp == component::cdb &&
            other.cycle == ev.cycle) {
          // Track the latest double broadcast: the setup constants can
          // pair up early, but the producers' pairing is the last one.
          double_cycle = std::max(double_cycle, ev.cycle);
          found_double = true;
        }
      }
    }
    if (found_double && last_cdb_cycle == double_cycle + 1) {
      // The consumer woke on the double-broadcast cycle and issued that
      // same cycle: its own result crossed the CDB one cycle later.
      scenario_covered = true;
    }
  }
  EXPECT_TRUE(scenario_covered)
      << "no filler alignment produced a same-cycle double broadcast "
         "with a same-cycle consumer issue — the directed scenario lost "
         "its coverage";
}

} // namespace
} // namespace usca::sim
