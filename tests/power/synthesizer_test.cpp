#include "power/synthesizer.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "stats/descriptive.h"

namespace usca::power {
namespace {

sim::activity_trace sample_activity() {
  sim::activity_trace activity;
  activity.push_back({5, sim::component::is_ex_bus, 0, 8});
  activity.push_back({5, sim::component::mdr, 0, 4});
  activity.push_back({7, sim::component::shift_buffer, 0, 10});
  activity.push_back({9, sim::component::rf_read_port, 0, 16});
  return activity;
}

TEST(Synthesizer, CleanTraceSumsWeightedToggles) {
  synthesis_config config;
  config.baseline = 1.0;
  config.gaussian_sigma = 0.0;
  trace_synthesizer synth(config, 1);
  const trace t = synth.synthesize_clean(sample_activity(), 0, 12);
  ASSERT_EQ(t.size(), 12u);
  const auto& w = config.weights;
  EXPECT_DOUBLE_EQ(t[5], 1.0 + w[sim::component::is_ex_bus] * 8 +
                             w[sim::component::mdr] * 4);
  EXPECT_DOUBLE_EQ(t[7], 1.0 + w[sim::component::shift_buffer] * 10);
  // RF read ports carry weight zero on the characterized core.
  EXPECT_DOUBLE_EQ(t[9], 1.0);
  EXPECT_DOUBLE_EQ(t[0], 1.0);
}

TEST(Synthesizer, WindowClipsEvents) {
  synthesis_config config;
  config.baseline = 0.0;
  trace_synthesizer synth(config, 1);
  const trace t = synth.synthesize_clean(sample_activity(), 6, 10);
  ASSERT_EQ(t.size(), 4u);
  EXPECT_DOUBLE_EQ(t[0], 0.0); // cycle 6
  EXPECT_GT(t[1], 0.0);        // cycle 7: shift buffer event
}

TEST(Synthesizer, NoiseHasConfiguredSigma) {
  synthesis_config config;
  config.baseline = 0.0;
  config.gaussian_sigma = 3.0;
  trace_synthesizer synth(config, 77);
  stats::running_stats st;
  const sim::activity_trace empty;
  for (int i = 0; i < 300; ++i) {
    for (const double v : synth.synthesize(empty, 0, 64)) {
      st.add(v);
    }
  }
  EXPECT_NEAR(st.mean(), 0.0, 0.1);
  EXPECT_NEAR(st.stddev(), 3.0, 0.1);
}

TEST(Synthesizer, AveragingReducesNoise) {
  synthesis_config config;
  config.baseline = 0.0;
  config.gaussian_sigma = 4.0;
  trace_synthesizer synth(config, 99);
  const sim::activity_trace empty;
  stats::running_stats single;
  stats::running_stats averaged;
  for (int i = 0; i < 200; ++i) {
    for (const double v : synth.synthesize(empty, 0, 32)) {
      single.add(v);
    }
    for (const double v : synth.synthesize_averaged(empty, 0, 32, 16)) {
      averaged.add(v);
    }
  }
  // 16-fold averaging shrinks sigma by 4x.
  EXPECT_NEAR(averaged.stddev(), single.stddev() / 4.0, 0.25);
}

TEST(Synthesizer, DeterministicForSameSeed) {
  synthesis_config config;
  trace_synthesizer a(config, 5);
  trace_synthesizer b(config, 5);
  const auto activity = sample_activity();
  EXPECT_EQ(a.synthesize(activity, 0, 16), b.synthesize(activity, 0, 16));
}

TEST(OsNoise, DisabledContributesNothing) {
  os_noise_config config; // disabled by default
  util::xoshiro256 rng(3);
  os_noise_process p(config, rng);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(p.step(), 0.0);
  }
}

TEST(OsNoise, EnabledProducesPositiveStructuredLoad) {
  os_noise_config config;
  config.enabled = true;
  util::xoshiro256 rng(3);
  os_noise_process p(config, rng);
  stats::running_stats st;
  for (int i = 0; i < 20'000; ++i) {
    const double v = p.step();
    EXPECT_GE(v, 0.0);
    st.add(v);
  }
  // Mean close to the configured second-core activity plus burst share.
  EXPECT_GT(st.mean(), config.second_core_mean * 0.5);
  EXPECT_GT(st.stddev(), 1.0);
}

TEST(OsNoise, BurstsLastConfiguredDuration) {
  os_noise_config config;
  config.enabled = true;
  config.second_core_mean = 0.0;
  config.second_core_sigma = 0.0;
  config.second_core_max = 0.0;
  config.preemption_probability = 0.01;
  config.preemption_amplitude = 50.0;
  config.preemption_duration = 10;
  util::xoshiro256 rng(11);
  os_noise_process p(config, rng);
  int consecutive = 0;
  int max_consecutive = 0;
  for (int i = 0; i < 50'000; ++i) {
    if (p.step() >= 50.0) {
      ++consecutive;
      max_consecutive = std::max(max_consecutive, consecutive);
    } else {
      consecutive = 0;
    }
  }
  EXPECT_GE(max_consecutive, 10);
}

TEST(LeakageWeights, CortexA7RelativeMagnitudes) {
  const leakage_weights w = leakage_weights::cortex_a7_like();
  EXPECT_EQ(w[sim::component::rf_read_port], 0.0);
  // Shift buffer far below the main sources (paper Section 4.1 reports
  // its correlation at ~1/10 of the other leakages').
  EXPECT_LT(w[sim::component::shift_buffer], 0.2);
  EXPECT_GT(w[sim::component::shift_buffer], 0.0);
  EXPECT_GT(w[sim::component::mdr], w[sim::component::is_ex_bus]);
}

} // namespace
} // namespace usca::power
