#include "power/second_core.h"

#include <gtest/gtest.h>

#include "power/synthesizer.h"
#include "stats/descriptive.h"

namespace usca::power {
namespace {

TEST(SecondCore, ProducesNonTrivialActivity) {
  const second_core_noise core(sim::cortex_a7(),
                               leakage_weights::cortex_a7_like(), 1, 4096);
  EXPECT_EQ(core.cycles(), 4096u);
  EXPECT_GT(core.mean_power(), 1.0); // a busy loop toggles real structures
}

TEST(SecondCore, WindowsAddPower) {
  const second_core_noise core(sim::cortex_a7(),
                               leakage_weights::cortex_a7_like(), 2, 2048);
  util::xoshiro256 rng(3);
  std::vector<double> accumulator(64, 0.0);
  core.add_window(accumulator, rng);
  double total = 0.0;
  for (const double v : accumulator) {
    total += v;
  }
  EXPECT_GT(total, 0.0);
}

TEST(SecondCore, RandomPhaseDecorrelatesAcquisitions) {
  const second_core_noise core(sim::cortex_a7(),
                               leakage_weights::cortex_a7_like(), 4, 2048);
  util::xoshiro256 rng(5);
  std::vector<double> a(32, 0.0);
  std::vector<double> b(32, 0.0);
  core.add_window(a, rng);
  core.add_window(b, rng);
  EXPECT_NE(a, b); // different phases virtually surely differ
}

TEST(SecondCore, AttachedToSynthesizerRaisesNoiseFloor) {
  synthesis_config config;
  config.baseline = 0.0;
  config.gaussian_sigma = 0.0;
  trace_synthesizer with_core(config, 11);
  with_core.attach_second_core(std::make_shared<second_core_noise>(
      sim::cortex_a7(), config.weights, 12, 2048));
  trace_synthesizer without(config, 11);

  const sim::activity_trace empty;
  stats::running_stats noisy;
  stats::running_stats quiet;
  for (int i = 0; i < 50; ++i) {
    for (const double v : with_core.synthesize(empty, 0, 64)) {
      noisy.add(v);
    }
    for (const double v : without.synthesize(empty, 0, 64)) {
      quiet.add(v);
    }
  }
  EXPECT_GT(noisy.mean(), quiet.mean() + 1.0);
  EXPECT_GT(noisy.stddev(), quiet.stddev());
}

TEST(SecondCore, DeterministicForSeed) {
  const second_core_noise a(sim::cortex_a7(),
                            leakage_weights::cortex_a7_like(), 7, 1024);
  const second_core_noise b(sim::cortex_a7(),
                            leakage_weights::cortex_a7_like(), 7, 1024);
  EXPECT_EQ(a.mean_power(), b.mean_power());
}

} // namespace
} // namespace usca::power
