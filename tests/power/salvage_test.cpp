// Tests for salvage-mode store reading: the corruption taxonomy (file
// header bit-flip, chunk header bit-flip, payload bit-flip, mid-chunk
// truncation) must produce exact damage maps in salvage mode and
// diagnostic-rich throws in strict mode, while every surviving record
// replays bit-exactly with its original global index.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include <unistd.h>

#include "power/trace_io.h"
#include "power/trace_store_reader.h"
#include "util/error.h"

namespace usca {
namespace {

constexpr std::size_t k_labels = 2;
constexpr std::size_t k_samples = 6;
constexpr std::uint32_t k_chunk_traces = 8;
constexpr std::size_t k_records = 37; // 4 full chunks + a 5-record tail
constexpr std::uint64_t k_file_header = 64;
constexpr std::uint64_t k_chunk_header = 32;

power::trace_store_descriptor test_descriptor(power::trace_scalar scalar) {
  power::trace_store_descriptor desc;
  desc.samples = k_samples;
  desc.labels = k_labels;
  desc.scalar = scalar;
  desc.chunk_traces = k_chunk_traces;
  desc.seed = 0xfab;
  desc.config_hash = 0x5eed;
  return desc;
}

double label_of(std::size_t record, std::size_t l) {
  return static_cast<double>(record * 10 + l);
}

double sample_of(std::size_t record, std::size_t s,
                 power::trace_scalar scalar) {
  const double value = static_cast<double>(record * 1000 + s);
  return scalar == power::trace_scalar::f32
             ? static_cast<double>(static_cast<float>(value))
             : value;
}

std::string build_store(const char* name, power::trace_scalar scalar =
                                              power::trace_scalar::f64) {
  const std::string path =
      std::string("/tmp/usca_salvage_test_") + name + ".trc";
  std::remove(path.c_str());
  power::trace_store_writer writer =
      power::trace_store_writer::create(path, test_descriptor(scalar));
  std::vector<double> labels(k_labels), samples(k_samples);
  for (std::size_t i = 0; i < k_records; ++i) {
    for (std::size_t l = 0; l < k_labels; ++l) {
      labels[l] = label_of(i, l);
    }
    for (std::size_t s = 0; s < k_samples; ++s) {
      samples[s] = static_cast<double>(i * 1000 + s);
    }
    writer.append(labels, samples);
  }
  writer.close();
  return path;
}

/// Byte offset of chunk `c`'s header for the test store's geometry.
std::uint64_t chunk_offset(std::uint64_t c, power::trace_scalar scalar) {
  const std::uint64_t stride =
      k_chunk_header + k_chunk_traces * test_descriptor(scalar).record_bytes();
  return k_file_header + c * stride;
}

void flip_byte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  byte ^= 0x20;
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&byte, 1);
}

void truncate_to(const std::string& path, std::uint64_t size) {
  ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(size)), 0);
}

/// Asserts that the surviving records are exactly `expected` (original
/// global indices) and that each replays its original bits.
void expect_survivors(const power::trace_store_reader& reader,
                      const std::vector<std::size_t>& expected) {
  ASSERT_EQ(reader.traces(), expected.size());
  std::size_t at = 0;
  reader.stream([&](std::size_t index, std::span<const double> labels,
                    std::span<const double> samples) {
    ASSERT_LT(at, expected.size());
    EXPECT_EQ(index, expected[at]);
    for (std::size_t l = 0; l < labels.size(); ++l) {
      EXPECT_EQ(labels[l], label_of(index, l));
    }
    for (std::size_t s = 0; s < samples.size(); ++s) {
      EXPECT_EQ(samples[s], sample_of(index, s, reader.descriptor().scalar));
    }
    ++at;
  });
  EXPECT_EQ(at, expected.size());
}

std::vector<std::size_t> all_but_chunk(std::size_t lost_chunk) {
  std::vector<std::size_t> survivors;
  for (std::size_t i = 0; i < k_records; ++i) {
    if (i / k_chunk_traces != lost_chunk) {
      survivors.push_back(i);
    }
  }
  return survivors;
}

TEST(Salvage, IntactStoreHasEmptyDamageMap) {
  const std::string path = build_store("intact");
  const power::trace_store_reader reader(path,
                                         power::store_open_mode::salvage);
  EXPECT_TRUE(reader.intact());
  EXPECT_TRUE(reader.damage().empty());
  EXPECT_EQ(reader.lost_records(), 0u);
  std::vector<std::size_t> everything;
  for (std::size_t i = 0; i < k_records; ++i) {
    everything.push_back(i);
  }
  expect_survivors(reader, everything);
  std::remove(path.c_str());
}

TEST(Salvage, FileHeaderDamageIsFatalInBothModes) {
  const std::string path = build_store("file_header");
  flip_byte(path, 2); // inside the magic
  // No salvage is possible without a trusted file header: the geometry
  // that locates every chunk lives there.
  for (const auto mode :
       {power::store_open_mode::strict, power::store_open_mode::salvage}) {
    try {
      const power::trace_store_reader reader(path, mode);
      FAIL() << "damaged file header must throw";
    } catch (const util::analysis_error& e) {
      const std::string what = e.what();
      // The open-failure diagnostics contract: path, byte offset and
      // failure class in every validation error.
      EXPECT_NE(what.find(path), std::string::npos) << what;
      EXPECT_NE(what.find("byte offset"), std::string::npos) << what;
      EXPECT_NE(what.find("fault file_"), std::string::npos) << what;
    }
  }
  std::remove(path.c_str());
}

TEST(Salvage, ChunkHeaderMagicFlipLosesExactlyThatChunk) {
  const std::string path = build_store("chunk_magic");
  const std::uint64_t offset = chunk_offset(2, power::trace_scalar::f64);
  flip_byte(path, offset); // chunk 2's "CHNK" magic

  EXPECT_THROW(power::trace_store_reader{path}, util::analysis_error);

  const power::trace_store_reader reader(path,
                                         power::store_open_mode::salvage);
  ASSERT_EQ(reader.damage().size(), 1u); // exactly that chunk
  const power::chunk_damage& d = reader.damage().front();
  EXPECT_EQ(d.chunk, 2u);
  EXPECT_EQ(d.byte_offset, offset);
  EXPECT_EQ(d.fault, power::store_fault::chunk_bad_magic);
  EXPECT_FALSE(reader.intact());
  EXPECT_EQ(reader.lost_records(), k_chunk_traces);
  EXPECT_EQ(reader.next_index(), k_records); // holes don't shrink the range
  expect_survivors(reader, all_but_chunk(2));
  std::remove(path.c_str());
}

TEST(Salvage, ChunkHeaderFieldFlipFailsTheHeaderCrc) {
  const std::string path = build_store("chunk_field");
  const std::uint64_t offset = chunk_offset(1, power::trace_scalar::f64);
  flip_byte(path, offset + 16); // payload_bytes field: magic ok, CRC not

  try {
    const power::trace_store_reader reader(path);
    FAIL() << "strict open of a damaged store must throw";
  } catch (const util::analysis_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("chunk 1"), std::string::npos) << what;
    EXPECT_NE(what.find("fault chunk_header_crc"), std::string::npos)
        << what;
  }

  const power::trace_store_reader reader(path,
                                         power::store_open_mode::salvage);
  ASSERT_EQ(reader.damage().size(), 1u);
  EXPECT_EQ(reader.damage().front().chunk, 1u);
  EXPECT_EQ(reader.damage().front().fault,
            power::store_fault::chunk_header_crc);
  expect_survivors(reader, all_but_chunk(1));
  std::remove(path.c_str());
}

TEST(Salvage, PayloadBitRotFailsThePayloadCrc) {
  const std::string path = build_store("payload");
  const std::uint64_t offset =
      chunk_offset(3, power::trace_scalar::f64) + k_chunk_header + 100;
  flip_byte(path, offset);

  EXPECT_THROW(power::trace_store_reader{path}, util::analysis_error);

  const power::trace_store_reader reader(path,
                                         power::store_open_mode::salvage);
  ASSERT_EQ(reader.damage().size(), 1u);
  const power::chunk_damage& d = reader.damage().front();
  EXPECT_EQ(d.chunk, 3u);
  EXPECT_EQ(d.fault, power::store_fault::chunk_payload_crc);
  // Trusted header: the skip is the chunk's exact extent.
  EXPECT_EQ(d.bytes_skipped,
            k_chunk_header +
                k_chunk_traces *
                    test_descriptor(power::trace_scalar::f64).record_bytes());
  expect_survivors(reader, all_but_chunk(3));
  // Indexing into the hole throws; its neighbors stay addressable.
  EXPECT_THROW(reader.labels_row(3 * k_chunk_traces + 1),
               util::analysis_error);
  EXPECT_EQ(reader.labels_row(2 * k_chunk_traces)[0],
            label_of(2 * k_chunk_traces, 0));
  std::remove(path.c_str());
}

TEST(Salvage, MidChunkTruncationKeepsThePrefix) {
  const std::string path = build_store("truncated");
  const std::uint64_t tail = chunk_offset(4, power::trace_scalar::f64);
  truncate_to(path, tail + k_chunk_header + 100); // mid-payload of chunk 4

  EXPECT_THROW(power::trace_store_reader{path}, util::analysis_error);

  const power::trace_store_reader reader(path,
                                         power::store_open_mode::salvage);
  ASSERT_EQ(reader.damage().size(), 1u);
  EXPECT_EQ(reader.damage().front().chunk, 4u);
  EXPECT_EQ(reader.damage().front().fault,
            power::store_fault::chunk_truncated);
  EXPECT_EQ(reader.traces(), 4u * k_chunk_traces);
  // A torn TAIL is not a hole: next_index() stops at the last surviving
  // record (the archive resume point), so nothing counts as lost.
  EXPECT_EQ(reader.next_index(), 4u * k_chunk_traces);
  EXPECT_EQ(reader.lost_records(), 0u);
  expect_survivors(reader, all_but_chunk(4));

  // Cut inside the chunk header instead: a torn-header class.
  const std::string torn = build_store("torn_header");
  truncate_to(torn, tail + 10);
  const power::trace_store_reader torn_reader(
      torn, power::store_open_mode::salvage);
  ASSERT_EQ(torn_reader.damage().size(), 1u);
  EXPECT_EQ(torn_reader.damage().front().fault,
            power::store_fault::chunk_torn_header);
  std::remove(path.c_str());
  std::remove(torn.c_str());
}

TEST(Salvage, MultipleDamagedChunksAreAllReported) {
  const std::string path = build_store("multi");
  flip_byte(path, chunk_offset(0, power::trace_scalar::f64) + k_chunk_header +
                      7); // chunk 0 payload
  flip_byte(path, chunk_offset(2, power::trace_scalar::f64)); // chunk 2 magic

  const power::trace_store_reader reader(path,
                                         power::store_open_mode::salvage);
  ASSERT_EQ(reader.damage().size(), 2u);
  EXPECT_EQ(reader.damage()[0].chunk, 0u);
  EXPECT_EQ(reader.damage()[0].fault, power::store_fault::chunk_payload_crc);
  EXPECT_EQ(reader.damage()[1].chunk, 2u);
  EXPECT_EQ(reader.damage()[1].fault, power::store_fault::chunk_bad_magic);
  EXPECT_EQ(reader.lost_records(), 2u * k_chunk_traces);
  std::vector<std::size_t> survivors;
  for (std::size_t i = 0; i < k_records; ++i) {
    const std::size_t c = i / k_chunk_traces;
    if (c != 0 && c != 2) {
      survivors.push_back(i);
    }
  }
  expect_survivors(reader, survivors);
  std::remove(path.c_str());
}

TEST(Salvage, F32StoresSalvageThroughTheDecodeTile) {
  const std::string path =
      build_store("f32", power::trace_scalar::f32);
  flip_byte(path, chunk_offset(1, power::trace_scalar::f32) +
                      k_chunk_header + 11);

  const power::trace_store_reader reader(path,
                                         power::store_open_mode::salvage);
  ASSERT_EQ(reader.damage().size(), 1u);
  EXPECT_EQ(reader.damage().front().chunk, 1u);
  EXPECT_EQ(reader.damage().front().fault,
            power::store_fault::chunk_payload_crc);
  expect_survivors(reader, all_but_chunk(1));
  std::remove(path.c_str());
}

TEST(Salvage, StrictReaderPathsRejectSalvageHoles) {
  // chunk_rows stays dense over the SURVIVING chunks; first_record keeps
  // the original position so downstream indexing is correct.
  const std::string path = build_store("rows");
  flip_byte(path, chunk_offset(1, power::trace_scalar::f64));
  const power::trace_store_reader reader(path,
                                         power::store_open_mode::salvage);
  ASSERT_EQ(reader.chunk_count(), 4u);
  const power::batch_rows rows = reader.chunk_rows(1); // second SURVIVOR
  EXPECT_EQ(rows.first_record, 2u * k_chunk_traces);
  EXPECT_EQ(rows.count, k_chunk_traces);
  EXPECT_EQ(rows.labels[0], label_of(2 * k_chunk_traces, 0));
  std::remove(path.c_str());
}

} // namespace
} // namespace usca
