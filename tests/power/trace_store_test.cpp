// Tests for the chunked binary trace store: round-trip bit-identity
// through the mmap reader, zero-copy views, f32 quantization, rejection
// of truncated/corrupt files, and the writer's resume contract
// (truncate-to-full-chunk + byte-identical re-append).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "power/trace_io.h"
#include "power/trace_store_reader.h"
#include "util/crc32.h"
#include "util/error.h"
#include "util/rng.h"

namespace usca::power {
namespace {

struct record {
  std::vector<double> labels;
  std::vector<double> samples;
};

/// Deterministic record content for global index `i` — the stand-in for
/// a per-index-seeded campaign.
record record_at(std::size_t i, std::size_t n_labels,
                 std::size_t n_samples) {
  util::xoshiro256 rng(0x5707e + i);
  record r;
  for (std::size_t l = 0; l < n_labels; ++l) {
    r.labels.push_back(static_cast<double>(rng.next_u8()));
  }
  for (std::size_t s = 0; s < n_samples; ++s) {
    r.samples.push_back(5.0 + rng.next_gaussian());
  }
  return r;
}

std::string temp_path(const char* name) {
  return std::string("/tmp/usca_trace_store_test_") + name + ".trc";
}

trace_store_descriptor small_desc() {
  trace_store_descriptor desc;
  desc.labels = 2;
  desc.chunk_traces = 8;
  desc.seed = 0xfeed;
  desc.config_hash = 0xc0ffee;
  return desc;
}

void write_records(trace_store_writer& writer, std::size_t first,
                   std::size_t count, std::size_t n_labels,
                   std::size_t n_samples) {
  for (std::size_t i = first; i < first + count; ++i) {
    const record r = record_at(i, n_labels, n_samples);
    writer.append(r.labels, r.samples);
  }
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(TraceStore, RoundTripIsBitIdentical) {
  const std::string path = temp_path("roundtrip");
  const std::size_t n = 21; // 2 full chunks of 8 + a short tail chunk
  {
    auto writer = trace_store_writer::create(path, small_desc());
    write_records(writer, 0, n, 2, 5);
    EXPECT_EQ(writer.next_index(), n);
    writer.close();
  }

  trace_store_reader reader(path);
  EXPECT_EQ(reader.traces(), n);
  EXPECT_EQ(reader.samples(), 5u);
  EXPECT_EQ(reader.labels(), 2u);
  EXPECT_EQ(reader.first_index(), 0u);
  EXPECT_EQ(reader.next_index(), n);
  EXPECT_EQ(reader.chunk_count(), 3u);
  EXPECT_EQ(reader.descriptor().seed, 0xfeedu);
  EXPECT_EQ(reader.descriptor().config_hash, 0xc0ffeeu);

  // Zero-copy row views.
  for (std::size_t i = 0; i < n; ++i) {
    const record expect = record_at(i, 2, 5);
    const auto labels = reader.labels_row(i);
    const auto samples = reader.samples_row(i);
    ASSERT_EQ(labels.size(), 2u);
    ASSERT_EQ(samples.size(), 5u);
    for (std::size_t l = 0; l < labels.size(); ++l) {
      EXPECT_EQ(labels[l], expect.labels[l]);
    }
    for (std::size_t s = 0; s < samples.size(); ++s) {
      EXPECT_EQ(samples[s], expect.samples[s]);
    }
  }

  // Streaming delivers the same bytes in index order.
  std::size_t seen = 0;
  reader.stream([&](std::size_t index, std::span<const double> labels,
                    std::span<const double> samples) {
    EXPECT_EQ(index, seen);
    const record expect = record_at(index, 2, 5);
    for (std::size_t s = 0; s < samples.size(); ++s) {
      EXPECT_EQ(samples[s], expect.samples[s]);
    }
    EXPECT_EQ(labels[0], expect.labels[0]);
    ++seen;
  });
  EXPECT_EQ(seen, n);
  std::remove(path.c_str());
}

TEST(TraceStore, DeferredSampleCountComesFromFirstRecord) {
  const std::string path = temp_path("deferred");
  trace_store_descriptor desc = small_desc();
  desc.samples = 0;
  {
    auto writer = trace_store_writer::create(path, desc);
    write_records(writer, 0, 3, 2, 7);
    EXPECT_EQ(writer.descriptor().samples, 7u);
    // A record of another shape is rejected.
    const record bad = record_at(3, 2, 6);
    EXPECT_THROW(writer.append(bad.labels, bad.samples),
                 util::analysis_error);
    writer.close();
  }
  trace_store_reader reader(path);
  EXPECT_EQ(reader.samples(), 7u);
  EXPECT_EQ(reader.traces(), 3u);
  std::remove(path.c_str());
}

TEST(TraceStore, F32StoreQuantizesToFloat) {
  const std::string path = temp_path("f32");
  trace_store_descriptor desc = small_desc();
  desc.scalar = trace_scalar::f32;
  {
    auto writer = trace_store_writer::create(path, desc);
    write_records(writer, 0, 10, 2, 5);
    writer.close();
  }
  trace_store_reader reader(path);
  EXPECT_EQ(reader.descriptor().scalar, trace_scalar::f32);
  // Half the payload of an f64 store for the samples.
  EXPECT_THROW((void)reader.samples_row(0), util::analysis_error);
  std::size_t seen = 0;
  reader.stream([&](std::size_t index, std::span<const double> labels,
                    std::span<const double> samples) {
    const record expect = record_at(index, 2, 5);
    for (std::size_t s = 0; s < samples.size(); ++s) {
      EXPECT_EQ(samples[s],
                static_cast<double>(static_cast<float>(expect.samples[s])));
    }
    EXPECT_EQ(labels[1], expect.labels[1]); // labels stay f64 exact
    ++seen;
  });
  EXPECT_EQ(seen, 10u);
  std::remove(path.c_str());
}

TEST(TraceStore, RejectsBadMagicAndHeaderDamage) {
  const std::string path = temp_path("badmagic");
  {
    auto writer = trace_store_writer::create(path, small_desc());
    write_records(writer, 0, 8, 2, 5);
    writer.close();
  }
  std::string bytes = file_bytes(path);
  {
    std::string broken = bytes;
    broken[0] = 'X';
    std::ofstream(path, std::ios::binary) << broken;
    EXPECT_THROW(trace_store_reader reader(path), util::analysis_error);
  }
  {
    // Flip a header field (seed) without fixing the header CRC.
    std::string broken = bytes;
    broken[33] ^= 0x5a;
    std::ofstream(path, std::ios::binary) << broken;
    EXPECT_THROW(trace_store_reader reader(path), util::analysis_error);
  }
  std::remove(path.c_str());
}

TEST(TraceStore, RejectsCorruptChunkPayload) {
  const std::string path = temp_path("corrupt");
  {
    auto writer = trace_store_writer::create(path, small_desc());
    write_records(writer, 0, 16, 2, 5);
    writer.close();
  }
  std::string bytes = file_bytes(path);
  // Flip one payload byte in the middle of the second chunk.
  bytes[bytes.size() - 40] ^= 0x01;
  std::ofstream(path, std::ios::binary) << bytes;
  EXPECT_THROW(trace_store_reader reader(path), util::analysis_error);
  std::remove(path.c_str());
}

TEST(TraceStore, RejectsTruncatedChunk) {
  const std::string path = temp_path("truncated");
  {
    auto writer = trace_store_writer::create(path, small_desc());
    write_records(writer, 0, 8, 2, 5);
    writer.close();
  }
  const std::string bytes = file_bytes(path);
  std::ofstream(path, std::ios::binary)
      << bytes.substr(0, bytes.size() - 11);
  EXPECT_THROW(trace_store_reader reader(path), util::analysis_error);
  std::remove(path.c_str());
}

TEST(TraceStore, MissingFileThrows) {
  EXPECT_THROW(trace_store_reader reader("/nonexistent/usca.trc"),
               util::analysis_error);
}

TEST(TraceStore, RejectsForgedGeometryWithValidChecksums) {
  // An attacker-controlled (or badly corrupted) file whose checksums are
  // *recomputed* must still be rejected by the bounds checks rather than
  // driving an out-of-range read: forge an absurd sample count in the
  // header, and separately an absurd payload size in a chunk header.
  const std::string path = temp_path("forged");
  {
    auto writer = trace_store_writer::create(path, small_desc());
    write_records(writer, 0, 8, 2, 5);
    writer.close();
  }
  const std::string bytes = file_bytes(path);

  const auto patch_u64 = [](std::string& buf, std::size_t offset,
                            std::uint64_t value) {
    std::memcpy(buf.data() + offset, &value, sizeof value);
  };
  const auto fix_crc = [](std::string& buf, std::size_t start,
                          std::size_t length) {
    const std::uint32_t crc = util::crc32(buf.data() + start, length);
    std::memcpy(buf.data() + start + length, &crc, sizeof crc);
  };

  {
    std::string forged = bytes;
    patch_u64(forged, 16, (1ULL << 61) - 1); // header sample count
    fix_crc(forged, 0, 60);
    std::ofstream(path, std::ios::binary) << forged;
    EXPECT_THROW(trace_store_reader reader(path), util::analysis_error);
    EXPECT_THROW(trace_store_writer::resume(path, small_desc()),
                 util::analysis_error);
  }
  {
    std::string forged = bytes;
    patch_u64(forged, 64 + 16, ~0ULL - 7); // chunk payload_bytes
    fix_crc(forged, 64, 28);
    std::ofstream(path, std::ios::binary) << forged;
    EXPECT_THROW(trace_store_reader reader(path), util::analysis_error);
    // resume() treats the invalid chunk as a torn tail and truncates.
    auto writer = trace_store_writer::resume(path, small_desc());
    EXPECT_EQ(writer.next_index(), 0u);
    writer.close();
  }
  std::remove(path.c_str());
}

TEST(TraceStore, ResumeReproducesUninterruptedFileByteForByte) {
  const std::string full_path = temp_path("resume_full");
  const std::string part_path = temp_path("resume_part");
  const std::size_t n = 29; // chunks of 8: 3 full + 5-record tail
  {
    auto writer = trace_store_writer::create(full_path, small_desc());
    write_records(writer, 0, n, 2, 5);
    writer.close();
  }
  {
    // "Killed" after 19 records: 2 full chunks on disk + 3 buffered
    // records flushed as a short chunk by close().
    auto writer = trace_store_writer::create(part_path, small_desc());
    write_records(writer, 0, 19, 2, 5);
    writer.close();
  }
  {
    // Resume re-buffers the short tail chunk (records 16..18) and appends
    // the remainder — no record is lost or duplicated.
    auto writer = trace_store_writer::resume(part_path, small_desc());
    EXPECT_EQ(writer.next_index(), 19u);
    write_records(writer, 19, n - 19, 2, 5);
    writer.close();
  }
  EXPECT_EQ(file_bytes(part_path), file_bytes(full_path));

  // Resuming a complete archive and appending nothing leaves it
  // byte-identical (the re-buffered tail chunk flushes back on close).
  {
    auto writer = trace_store_writer::resume(full_path, small_desc());
    EXPECT_EQ(writer.next_index(), n);
    writer.close();
  }
  EXPECT_EQ(file_bytes(part_path), file_bytes(full_path));
  std::remove(full_path.c_str());
  std::remove(part_path.c_str());
}

TEST(TraceStore, ResumeDropsTornTrailingBytes) {
  const std::string path = temp_path("torn");
  {
    auto writer = trace_store_writer::create(path, small_desc());
    write_records(writer, 0, 16, 2, 5);
    writer.close();
  }
  // Simulate a kill mid-write: append garbage (a torn chunk header).
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "CHNKgarbage";
  }
  auto writer = trace_store_writer::resume(path, small_desc());
  EXPECT_EQ(writer.next_index(), 16u);
  write_records(writer, 16, 4, 2, 5);
  writer.close();
  trace_store_reader reader(path);
  EXPECT_EQ(reader.traces(), 20u);
  std::remove(path.c_str());
}

TEST(TraceStore, ResumeRejectsForeignConfigurationWithoutTouchingIt) {
  const std::string path = temp_path("foreign");
  {
    auto writer = trace_store_writer::create(path, small_desc());
    write_records(writer, 0, 8, 2, 5);
    writer.close();
  }
  const std::string before = file_bytes(path);
  trace_store_descriptor other = small_desc();
  other.seed = 0xbad;
  EXPECT_THROW(trace_store_writer::resume(path, other),
               util::analysis_error);
  other = small_desc();
  other.config_hash = 0xbad;
  EXPECT_THROW(trace_store_writer::resume(path, other),
               util::analysis_error);
  // The rejected attempts must not have altered a single byte (a rewrite
  // of the header would launder the foreign config hash into a "valid"
  // one and let a retry silently mix trace populations).
  EXPECT_EQ(file_bytes(path), before);
  {
    auto writer = trace_store_writer::resume(path, small_desc());
    EXPECT_EQ(writer.next_index(), 8u);
    writer.close();
  }
  EXPECT_EQ(file_bytes(path), before);
  std::remove(path.c_str());
}

TEST(TraceStore, ResumeLeavesNonStoreFilesUntouched) {
  const std::string path = temp_path("notastore");
  const std::string content(200, 'x');
  std::ofstream(path, std::ios::binary) << content;
  EXPECT_THROW(trace_store_writer::resume(path, small_desc()),
               util::analysis_error);
  EXPECT_EQ(file_bytes(path), content);
  std::remove(path.c_str());
}

TEST(TraceStore, ResumeTruncatesAtMidChainShortChunk) {
  // A short chunk is only valid as the LAST chunk.  Craft a file with a
  // short chunk FOLLOWED by a full one (valid CRCs, contiguous indices):
  // the reader must reject it outright, and resume() must treat
  // everything after the short chunk as torn tail — truncate, re-buffer,
  // and re-simulating the dropped suffix must reproduce the
  // uninterrupted file byte for byte.
  const std::string path = temp_path("midshort");
  {
    auto writer = trace_store_writer::create(path, small_desc());
    write_records(writer, 0, 4, 2, 5); // one short chunk (4 < 8)
    writer.close();
  }
  std::string crafted = file_bytes(path);
  {
    // Append a hand-built FULL chunk holding records 4..11.
    const std::size_t record_bytes = (2 + 5) * sizeof(double);
    std::string payload;
    for (std::size_t i = 4; i < 12; ++i) {
      const record r = record_at(i, 2, 5);
      for (const double v : r.labels) {
        payload.append(reinterpret_cast<const char*>(&v), sizeof v);
      }
      for (const double v : r.samples) {
        payload.append(reinterpret_cast<const char*>(&v), sizeof v);
      }
    }
    ASSERT_EQ(payload.size(), 8 * record_bytes);
    std::string chdr(32, '\0');
    const std::uint32_t magic = 0x4b4e4843; // "CHNK"
    const std::uint32_t count = 8;
    const std::uint64_t first_index = 4;
    const auto payload_bytes = static_cast<std::uint64_t>(payload.size());
    const std::uint32_t payload_crc =
        util::crc32(payload.data(), payload.size());
    std::memcpy(chdr.data() + 0, &magic, 4);
    std::memcpy(chdr.data() + 4, &count, 4);
    std::memcpy(chdr.data() + 8, &first_index, 8);
    std::memcpy(chdr.data() + 16, &payload_bytes, 8);
    std::memcpy(chdr.data() + 24, &payload_crc, 4);
    const std::uint32_t header_crc = util::crc32(chdr.data(), 28);
    std::memcpy(chdr.data() + 28, &header_crc, 4);
    crafted += chdr + payload;
    std::ofstream(path, std::ios::binary) << crafted;
  }
  EXPECT_THROW(trace_store_reader reader(path), util::analysis_error);

  auto writer = trace_store_writer::resume(path, small_desc());
  EXPECT_EQ(writer.next_index(), 4u); // the full chunk after the short
                                      // one was dropped as torn tail
  write_records(writer, 4, 12, 2, 5);
  writer.close();

  const std::string reference_path = temp_path("midshort_ref");
  {
    auto reference = trace_store_writer::create(reference_path, small_desc());
    write_records(reference, 0, 16, 2, 5);
    reference.close();
  }
  EXPECT_EQ(file_bytes(path), file_bytes(reference_path));
  const trace_store_reader repaired(path);
  EXPECT_EQ(repaired.traces(), 16u);
  std::remove(path.c_str());
  std::remove(reference_path.c_str());
}

TEST(TraceStore, HeaderOnlyStoreIsAValidEmptyArchive) {
  const std::string path = temp_path("headeronly");
  trace_store_descriptor desc = small_desc();
  desc.samples = 5; // shape known up front => close() writes the header
  {
    auto writer = trace_store_writer::create(path, desc);
    writer.close();
  }
  trace_store_reader reader(path);
  EXPECT_EQ(reader.traces(), 0u);
  EXPECT_EQ(reader.next_index(), 0u);
  EXPECT_EQ(reader.samples(), 5u);
  std::remove(path.c_str());
}

TEST(TraceStore, ResumeOfMissingOrEmptyFileCreates) {
  const std::string path = temp_path("fresh");
  std::remove(path.c_str());
  {
    auto writer = trace_store_writer::resume(path, small_desc());
    EXPECT_EQ(writer.next_index(), 0u);
    write_records(writer, 0, 4, 2, 5);
    writer.close();
  }
  trace_store_reader reader(path);
  EXPECT_EQ(reader.traces(), 4u);
  std::remove(path.c_str());
}

} // namespace
} // namespace usca::power
