#include "power/trace.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace usca::power {
namespace {

TEST(TraceMatrix, Dimensions) {
  trace_matrix m(3, 5);
  EXPECT_EQ(m.traces(), 3u);
  EXPECT_EQ(m.samples(), 5u);
  EXPECT_FALSE(m.empty());
  EXPECT_EQ(m.at(2, 4), 0.0);
}

TEST(TraceMatrix, RowAccess) {
  trace_matrix m(2, 3);
  m.at(1, 0) = 1.5;
  m.at(1, 2) = 2.5;
  const auto row = m.row(1);
  EXPECT_EQ(row[0], 1.5);
  EXPECT_EQ(row[2], 2.5);
}

TEST(TraceMatrix, PushRowGrows) {
  trace_matrix m;
  EXPECT_TRUE(m.empty());
  const trace t1 = {1.0, 2.0};
  m.push_row(t1);
  const trace t2 = {3.0, 4.0};
  m.push_row(t2);
  EXPECT_EQ(m.traces(), 2u);
  EXPECT_EQ(m.at(1, 1), 4.0);
}

TEST(TraceMatrix, MismatchedRowThrows) {
  trace_matrix m(1, 3);
  const trace wrong = {1.0};
  EXPECT_THROW(m.set_row(0, wrong), util::analysis_error);
  EXPECT_THROW(m.push_row(wrong), util::analysis_error);
}

TEST(AverageTraces, ComputesElementwiseMean) {
  const std::vector<trace> group = {{1.0, 2.0}, {3.0, 6.0}};
  const trace avg = average_traces(group);
  EXPECT_DOUBLE_EQ(avg[0], 2.0);
  EXPECT_DOUBLE_EQ(avg[1], 4.0);
}

TEST(AverageTraces, EmptyGroupThrows) {
  const std::vector<trace> none;
  EXPECT_THROW(average_traces(none), util::analysis_error);
}

} // namespace
} // namespace usca::power
