#include "power/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.h"
#include "util/rng.h"

namespace usca::power {
namespace {

trace_matrix sample_matrix() {
  trace_matrix m(3, 5);
  util::xoshiro256 rng(9);
  for (std::size_t i = 0; i < m.traces(); ++i) {
    for (std::size_t s = 0; s < m.samples(); ++s) {
      m.at(i, s) = rng.next_gaussian();
    }
  }
  return m;
}

TEST(TraceIo, BinaryRoundTrip) {
  const trace_matrix original = sample_matrix();
  std::stringstream buffer;
  save_traces(original, buffer);
  const trace_matrix loaded = load_traces(buffer);
  ASSERT_EQ(loaded.traces(), original.traces());
  ASSERT_EQ(loaded.samples(), original.samples());
  for (std::size_t i = 0; i < original.traces(); ++i) {
    for (std::size_t s = 0; s < original.samples(); ++s) {
      EXPECT_EQ(loaded.at(i, s), original.at(i, s));
    }
  }
}

TEST(TraceIo, EmptyMatrixRoundTrips) {
  trace_matrix empty;
  std::stringstream buffer;
  save_traces(empty, buffer);
  const trace_matrix loaded = load_traces(buffer);
  EXPECT_EQ(loaded.traces(), 0u);
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "NOPE.......................";
  EXPECT_THROW(load_traces(buffer), util::analysis_error);
}

TEST(TraceIo, RejectsTruncatedFile) {
  const trace_matrix original = sample_matrix();
  std::stringstream buffer;
  save_traces(original, buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() - 9));
  EXPECT_THROW(load_traces(truncated), util::analysis_error);
}

TEST(TraceIo, FileRoundTrip) {
  const trace_matrix original = sample_matrix();
  const std::string path = "/tmp/usca_trace_io_test.bin";
  save_traces(original, path);
  const trace_matrix loaded = load_traces(path);
  EXPECT_EQ(loaded.at(2, 4), original.at(2, 4));
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_traces("/nonexistent/usca.bin"), util::analysis_error);
}

TEST(TraceIo, CsvExportShape) {
  const trace_matrix m = sample_matrix();
  std::stringstream out;
  export_csv(m, out);
  std::string line;
  int lines = 0;
  while (std::getline(out, line)) {
    ++lines;
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 4);
  }
  EXPECT_EQ(lines, 3);
}

TEST(TraceIo, CsvRowsRoundTripShortestRepresentation) {
  const trace_matrix m = sample_matrix();
  std::stringstream out;
  export_csv(m, out);
  // Every exported value parses back to the exact double (std::to_chars
  // shortest-round-trip formatting).
  std::string line;
  std::size_t row = 0;
  while (std::getline(out, line)) {
    std::stringstream cells(line);
    std::string cell;
    std::size_t col = 0;
    while (std::getline(cells, cell, ',')) {
      EXPECT_EQ(std::stod(cell), m.at(row, col));
      ++col;
    }
    EXPECT_EQ(col, m.samples());
    ++row;
  }
  EXPECT_EQ(row, m.traces());
}

} // namespace
} // namespace usca::power
