// Regression pin on the Cortex-A7-like leakage model (paper Table 2 and
// Section 4.1 prose).  The *ordering* of the component weights is what
// the reproduction's conclusions rest on; a refactor that silently
// inverted it would leave every test compiling and most statistics
// plausible, so the claims are pinned here explicitly:
//
//   * the store/memory path (MDR) leaks strongest ("store leakage was the
//     highest among the detected ones");
//   * the barrel-shifter buffer leaks at about 1/10 of the main sources;
//   * the RF read ports do not leak at all (short load).
#include <gtest/gtest.h>

#include "power/synthesizer.h"

namespace usca {
namespace {

using sim::component;

TEST(LeakageWeights, RfReadPortsDoNotLeak) {
  const power::leakage_weights w = power::leakage_weights::cortex_a7_like();
  EXPECT_EQ(w[component::rf_read_port], 0.0);
}

TEST(LeakageWeights, MemoryPathLeaksStrongest) {
  const power::leakage_weights w = power::leakage_weights::cortex_a7_like();
  for (std::size_t c = 0; c < sim::component_count; ++c) {
    const auto comp = static_cast<component>(c);
    if (comp == component::mdr) {
      continue;
    }
    EXPECT_GT(w[component::mdr], w[comp])
        << "MDR must dominate " << sim::component_name(comp);
  }
}

TEST(LeakageWeights, ShifterBufferAboutOneTenthOfMainSources) {
  const power::leakage_weights w = power::leakage_weights::cortex_a7_like();
  for (const component main :
       {component::is_ex_bus, component::alu_in_latch, component::alu_out,
        component::ex_wb_latch, component::wb_bus}) {
    const double ratio = w[component::shift_buffer] / w[main];
    EXPECT_GE(ratio, 0.05) << sim::component_name(main);
    EXPECT_LE(ratio, 0.2) << sim::component_name(main);
  }
}

TEST(LeakageWeights, MainPipelineBuffersLeakEqually) {
  // Section 4.1 reports comparable magnitudes for the operand buses and
  // pipeline latches; the model encodes them with a common unit weight.
  const power::leakage_weights w = power::leakage_weights::cortex_a7_like();
  const double reference = w[component::is_ex_bus];
  EXPECT_GT(reference, 0.0);
  EXPECT_EQ(w[component::alu_in_latch], reference);
  EXPECT_EQ(w[component::alu_out], reference);
  EXPECT_EQ(w[component::ex_wb_latch], reference);
  EXPECT_EQ(w[component::wb_bus], reference);
}

TEST(LeakageWeights, SubWordAlignmentBufferLeaksBelowMainSources) {
  const power::leakage_weights w = power::leakage_weights::cortex_a7_like();
  EXPECT_GT(w[component::align_buffer], w[component::shift_buffer]);
  EXPECT_LT(w[component::align_buffer], w[component::mdr]);
}

} // namespace
} // namespace usca
