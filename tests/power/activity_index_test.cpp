// Tests for the cycle-sorted activity index and the index-backed
// synthesizer overloads: window extraction through the index must be
// bit-identical to the linear scan (clean and noisy paths alike), for
// random event streams and real backend traces.
#include <gtest/gtest.h>

#include "asmx/program.h"
#include "power/synthesizer.h"
#include "sim/ooo/ooo_core.h"
#include "sim/pipeline.h"
#include "sim/uarch_activity.h"
#include "util/rng.h"

namespace usca {
namespace {

sim::activity_trace random_activity(util::xoshiro256& rng, std::size_t events,
                                    std::uint32_t max_cycle) {
  sim::activity_trace trace;
  trace.reserve(events);
  for (std::size_t i = 0; i < events; ++i) {
    sim::activity_event ev;
    // Unsorted stamps, future-dated like real emission (issue + k).
    ev.cycle = static_cast<std::uint32_t>(rng.bounded(max_cycle));
    ev.comp = static_cast<sim::component>(rng.bounded(sim::component_count));
    ev.lane = static_cast<std::uint8_t>(rng.bounded(4));
    ev.toggles = static_cast<std::uint8_t>(1 + rng.bounded(32));
    trace.push_back(ev);
  }
  return trace;
}

TEST(ActivityCycleIndex, SortsAndPreservesPerCycleOrder) {
  util::xoshiro256 rng(42);
  const sim::activity_trace trace = random_activity(rng, 500, 64);
  sim::activity_cycle_index index(trace);

  ASSERT_EQ(index.size(), trace.size());
  // The index is sorted by cycle...
  const sim::activity_event* begin = index.window_begin(0);
  const sim::activity_event* end = index.window_end(1'000'000);
  ASSERT_EQ(static_cast<std::size_t>(end - begin), trace.size());
  for (const sim::activity_event* ev = begin + 1; ev != end; ++ev) {
    EXPECT_GE(ev->cycle, (ev - 1)->cycle);
  }
  // ...and stable: events of one cycle appear in emission order.
  for (std::uint32_t c = 0; c < 64; ++c) {
    std::vector<sim::activity_event> linear;
    for (const sim::activity_event& ev : trace) {
      if (ev.cycle == c) {
        linear.push_back(ev);
      }
    }
    const sim::activity_event* lo = index.window_begin(c);
    const sim::activity_event* hi = index.window_end(c + 1);
    ASSERT_EQ(static_cast<std::size_t>(hi - lo), linear.size());
    for (std::size_t i = 0; i < linear.size(); ++i) {
      EXPECT_EQ(lo[i], linear[i]);
    }
  }
}

TEST(ActivityCycleIndex, EmptyTraceYieldsEmptyWindows) {
  sim::activity_cycle_index index{sim::activity_trace{}};
  EXPECT_TRUE(index.empty());
  EXPECT_EQ(index.window_begin(0), index.window_end(100));
}

TEST(ActivityCycleIndex, RebuildReusesBuffersAndMatches) {
  util::xoshiro256 rng(7);
  sim::activity_cycle_index index;
  for (int round = 0; round < 4; ++round) {
    const sim::activity_trace trace =
        random_activity(rng, 100 + 200 * static_cast<std::size_t>(round), 48);
    index.build(trace);
    ASSERT_EQ(index.size(), trace.size());
    sim::activity_cycle_index fresh(trace);
    EXPECT_EQ(index.window_end(1000) - index.window_begin(0),
              fresh.window_end(1000) - fresh.window_begin(0));
  }
}

TEST(SynthesizerIndexOverloads, CleanWindowsMatchLinearScan) {
  util::xoshiro256 rng(11);
  const sim::activity_trace trace = random_activity(rng, 800, 128);
  const sim::activity_cycle_index index(trace);
  power::trace_synthesizer synth(power::synthesis_config{}, 3);

  // Multi-window sweep: every sub-window must match the linear scan
  // bit-for-bit.
  for (std::uint32_t begin = 0; begin < 120; begin += 13) {
    const std::uint32_t end = begin + 17;
    const power::trace linear = synth.synthesize_clean(trace, begin, end);
    const power::trace indexed = synth.synthesize_clean(index, begin, end);
    ASSERT_EQ(linear.size(), indexed.size());
    for (std::size_t s = 0; s < linear.size(); ++s) {
      EXPECT_EQ(linear[s], indexed[s]) << "window [" << begin << ", " << end
                                       << ") sample " << s;
    }
  }
}

TEST(SynthesizerIndexOverloads, NoisyPathMatchesWithEqualSeeds) {
  util::xoshiro256 rng(13);
  const sim::activity_trace trace = random_activity(rng, 400, 96);
  const sim::activity_cycle_index index(trace);

  power::trace_synthesizer a(power::synthesis_config{}, 99);
  power::trace_synthesizer b(power::synthesis_config{}, 99);
  const power::trace linear = a.synthesize(trace, 10, 60);
  const power::trace indexed = b.synthesize(index, 10, 60);
  EXPECT_EQ(linear, indexed);
}

TEST(SynthesizerIndexOverloads, WorksOnRealBackendTraces) {
  asmx::program_builder builder;
  builder.emit(isa::ins::mark(1));
  builder.emit(isa::ins::eor(isa::reg::r1, isa::reg::r2, isa::reg::r3));
  builder.emit(isa::ins::add(isa::reg::r4, isa::reg::r1, isa::reg::r2));
  builder.emit(isa::ins::mark(2));
  builder.emit(isa::ins::halt());
  const asmx::program prog = builder.build();

  power::trace_synthesizer synth(power::synthesis_config{}, 17);
  for (const bool use_ooo : {false, true}) {
    std::unique_ptr<sim::backend> core = sim::make_backend(
        use_ooo ? sim::backend_kind::ooo : sim::backend_kind::inorder,
        sim::program_image(prog),
        use_ooo ? sim::cortex_a7_ooo() : sim::cortex_a7());
    core->state().set_reg(isa::reg::r2, 0xdead);
    core->state().set_reg(isa::reg::r3, 0xbeef);
    core->warm_caches();
    core->run();

    const sim::activity_cycle_index index(core->activity());
    const auto end = static_cast<std::uint32_t>(core->cycles() + 4);
    const power::trace linear =
        synth.synthesize_clean(core->activity(), 0, end);
    const power::trace indexed = synth.synthesize_clean(index, 0, end);
    EXPECT_EQ(linear, indexed);
  }
}

} // namespace
} // namespace usca
