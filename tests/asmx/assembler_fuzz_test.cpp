// Fuzz property: any instruction the library can construct disassembles
// to text that re-assembles to the identical instruction.  This closes the
// loop between the three AL32 representations (IR, text, binary) beyond
// the fixed corpus in disasm_test.cpp.
#include <gtest/gtest.h>

#include "asmx/assembler.h"
#include "isa/disasm.h"
#include "isa/encoding.h"
#include "util/bitops.h"
#include "util/rng.h"

namespace usca::asmx {
namespace {

using isa::condition;
using isa::instruction;
using isa::opcode;
using isa::reg;
using isa::shift_kind;

reg rand_reg(util::xoshiro256& rng) {
  return isa::reg_from_index(static_cast<std::uint8_t>(rng.bounded(16)));
}

condition rand_cond(util::xoshiro256& rng) {
  // Exclude nv: "addnv ..." would disassemble with the nv suffix but a
  // condition-never data-processing op is canonically reserved for nop.
  return static_cast<condition>(rng.bounded(15));
}

instruction random_instruction(util::xoshiro256& rng) {
  instruction ins;
  switch (rng.bounded(9)) {
  case 0: { // dp reg with optional shift
    static constexpr opcode ops[] = {opcode::mov, opcode::mvn, opcode::add,
                                     opcode::adc, opcode::sub, opcode::sbc,
                                     opcode::rsb, opcode::and_, opcode::orr,
                                     opcode::eor, opcode::bic};
    ins.op = ops[rng.bounded(std::size(ops))];
    ins.cond = rand_cond(rng);
    ins.set_flags = rng.bounded(2) != 0;
    ins.rd = rand_reg(rng);
    ins.rn = (ins.op == opcode::mov || ins.op == opcode::mvn)
                 ? reg::r0
                 : rand_reg(rng);
    isa::shift_spec spec;
    if (rng.bounded(2) != 0) {
      spec.kind = static_cast<shift_kind>(rng.bounded(4));
      if (rng.bounded(2) != 0) {
        spec.by_register = true;
        spec.amount_reg = rand_reg(rng);
      } else {
        spec.amount = static_cast<std::uint8_t>(1 + rng.bounded(31));
      }
    }
    ins.op2 = isa::operand2::make_reg(rand_reg(rng), spec);
    return ins;
  }
  case 1: { // dp imm (ARM-encodable)
    ins.op = rng.bounded(2) ? opcode::add : opcode::eor;
    ins.rd = rand_reg(rng);
    ins.rn = rand_reg(rng);
    const auto imm8 = static_cast<std::uint32_t>(rng.bounded(256));
    const auto rot = 2 * static_cast<unsigned>(rng.bounded(16));
    ins.op2 = isa::operand2::make_imm(util::rotate_right(imm8, rot));
    return ins;
  }
  case 2: { // compare
    ins.op = static_cast<opcode>(static_cast<int>(opcode::cmp) +
                                 static_cast<int>(rng.bounded(4)));
    ins.rn = rand_reg(rng);
    ins.op2 = isa::operand2::make_reg(rand_reg(rng));
    ins.set_flags = true;
    return ins;
  }
  case 3: // wide moves
    ins.op = rng.bounded(2) ? opcode::movw : opcode::movt;
    ins.rd = rand_reg(rng);
    ins.imm16 = static_cast<std::uint16_t>(rng.bounded(65536));
    return ins;
  case 4: // multiply
    return rng.bounded(2)
               ? isa::ins::mul(rand_reg(rng), rand_reg(rng), rand_reg(rng))
               : isa::ins::mla(rand_reg(rng), rand_reg(rng), rand_reg(rng),
                               rand_reg(rng));
  case 5: { // memory, immediate offset
    static constexpr opcode ops[] = {opcode::ldr,  opcode::ldrb,
                                     opcode::ldrh, opcode::str,
                                     opcode::strb, opcode::strh};
    ins.op = ops[rng.bounded(std::size(ops))];
    ins.rd = rand_reg(rng);
    ins.mem.base = rand_reg(rng);
    ins.mem.offset_imm = static_cast<std::uint32_t>(rng.bounded(4096));
    ins.mem.subtract = ins.mem.offset_imm != 0 && rng.bounded(2) != 0;
    return ins;
  }
  case 6: { // memory, register offset
    ins.op = rng.bounded(2) ? opcode::ldr : opcode::str;
    ins.rd = rand_reg(rng);
    ins.mem.base = rand_reg(rng);
    ins.mem.reg_offset = true;
    ins.mem.offset_reg = rand_reg(rng);
    ins.mem.offset_shift = static_cast<std::uint8_t>(rng.bounded(32));
    ins.mem.subtract = rng.bounded(2) != 0;
    return ins;
  }
  case 7: { // branches
    switch (rng.bounded(3)) {
    case 0:
      return isa::ins::b(
          static_cast<std::int32_t>(rng.bounded(2000)) - 1000,
          rand_cond(rng));
    case 1:
      return isa::ins::bl(static_cast<std::int32_t>(rng.bounded(2000)) -
                          1000);
    default:
      return isa::ins::bx(rand_reg(rng));
    }
  }
  default:
    switch (rng.bounded(3)) {
    case 0:
      return isa::ins::nop();
    case 1:
      return isa::ins::mark(static_cast<std::uint16_t>(rng.bounded(65536)));
    default:
      return isa::ins::halt();
    }
  }
}

class AssemblerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AssemblerFuzz, DisasmAssembleRoundTrip) {
  util::xoshiro256 rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const instruction original = random_instruction(rng);
    const std::string text = isa::disassemble(original);
    program prog;
    ASSERT_NO_THROW(prog = assemble(text)) << text;
    ASSERT_EQ(prog.code.size(), 1u) << text;
    ASSERT_EQ(prog.code.front(), original) << text;
  }
}

TEST_P(AssemblerFuzz, EncodeDecodeRoundTrip) {
  util::xoshiro256 rng(GetParam() ^ 0xe17c0de);
  for (int i = 0; i < 500; ++i) {
    const instruction original = random_instruction(rng);
    if (!isa::encodable(original)) {
      continue;
    }
    const auto decoded = isa::decode(isa::encode(original));
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(*decoded, original) << isa::disassemble(original);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssemblerFuzz,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull));

} // namespace
} // namespace usca::asmx
