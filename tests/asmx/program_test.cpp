#include "asmx/program.h"

#include <gtest/gtest.h>

namespace usca::asmx {
namespace {

using isa::reg;
namespace mk = isa::ins;

TEST(Program, AddressIndexMapping) {
  program_builder b;
  b.emit(mk::nop());
  b.emit(mk::nop());
  const program p = b.build();
  EXPECT_EQ(p.address_of(0), p.code_base);
  EXPECT_EQ(p.address_of(1), p.code_base + 4);
  EXPECT_EQ(p.index_of_address(p.code_base + 4), 1u);
  EXPECT_FALSE(p.index_of_address(p.code_base + 2).has_value());
  EXPECT_FALSE(p.index_of_address(p.code_base + 400).has_value());
}

TEST(ProgramBuilder, BuildAppendsHalt) {
  program_builder b;
  b.emit(mk::nop());
  const program p = b.build();
  ASSERT_EQ(p.code.size(), 2u);
  EXPECT_EQ(p.code.back().op, isa::opcode::halt);
}

TEST(ProgramBuilder, BuildWithoutHalt) {
  program_builder b;
  b.emit(mk::nop());
  const program p = b.build(false);
  EXPECT_EQ(p.code.size(), 1u);
}

TEST(ProgramBuilder, RepeatEmitsCopies) {
  program_builder b;
  b.repeat({mk::mov(reg::r1, reg::r2), mk::mov(reg::r3, reg::r4)}, 5);
  EXPECT_EQ(b.size(), 10u);
}

TEST(ProgramBuilder, DataWordLayout) {
  program_builder b;
  const std::uint32_t a = b.data_word(0x11223344);
  const std::uint32_t c = b.data_word(0xdeadbeef);
  const program p = b.build();
  EXPECT_EQ(a, p.data_base);
  EXPECT_EQ(c, p.data_base + 4);
  EXPECT_EQ(p.data[0], 0x44);
  EXPECT_EQ(p.data[4], 0xef);
  EXPECT_EQ(p.data[7], 0xde);
}

TEST(ProgramBuilder, DataBlockAlignment) {
  program_builder b;
  b.data_bytes(std::array<std::uint8_t, 3>{1, 2, 3});
  const std::uint32_t aligned = b.data_block(16, 8);
  EXPECT_EQ(aligned % 8, 0u);
}

TEST(ProgramBuilder, LoadConstantEmitsPair) {
  program_builder b;
  b.load_constant(reg::r5, 0xcafe1234);
  const program p = b.build(false);
  ASSERT_EQ(p.code.size(), 2u);
  EXPECT_EQ(p.code[0], mk::movw(reg::r5, 0x1234));
  EXPECT_EQ(p.code[1], mk::movt(reg::r5, 0xcafe));
}

TEST(ProgramBuilder, Symbols) {
  program_builder b;
  b.define_symbol("entry", 0x40);
  const program p = b.build();
  EXPECT_EQ(*p.symbol("entry"), 0x40u);
  EXPECT_FALSE(p.symbol("missing").has_value());
}

} // namespace
} // namespace usca::asmx
