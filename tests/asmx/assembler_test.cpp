#include "asmx/assembler.h"

#include <gtest/gtest.h>

#include "isa/instruction.h"
#include "util/error.h"

namespace usca::asmx {
namespace {

using isa::condition;
using isa::opcode;
using isa::reg;
namespace mk = isa::ins;

TEST(Assembler, EmptySourceGivesEmptyProgram) {
  const program p = assemble("");
  EXPECT_TRUE(p.code.empty());
  EXPECT_TRUE(p.data.empty());
}

TEST(Assembler, SingleInstruction) {
  const program p = assemble("add r1, r2, r3");
  ASSERT_EQ(p.code.size(), 1u);
  EXPECT_EQ(p.code[0], mk::add(reg::r1, reg::r2, reg::r3));
}

TEST(Assembler, ConditionAndSetFlagsSuffixes) {
  const program p = assemble("addeqs r1, r2, r3\n"
                             "adds r1, r2, r3\n"
                             "addseq r1, r2, r3\n"
                             "addne r1, r2, #4\n");
  ASSERT_EQ(p.code.size(), 4u);
  EXPECT_EQ(p.code[0].cond, condition::eq);
  EXPECT_TRUE(p.code[0].set_flags);
  EXPECT_EQ(p.code[1].cond, condition::al);
  EXPECT_TRUE(p.code[1].set_flags);
  EXPECT_EQ(p.code[2].cond, condition::eq);
  EXPECT_TRUE(p.code[2].set_flags);
  EXPECT_EQ(p.code[3].cond, condition::ne);
  EXPECT_FALSE(p.code[3].set_flags);
}

TEST(Assembler, BlsParsesAsConditionalBranchNotBlWithS) {
  const program p = assemble("label:\n bls label");
  ASSERT_EQ(p.code.size(), 1u);
  EXPECT_EQ(p.code[0].op, opcode::b);
  EXPECT_EQ(p.code[0].cond, condition::ls);
}

TEST(Assembler, ShiftAliases) {
  const program p = assemble("lsl r1, r2, #3\nlsr r4, r5, r6\n");
  EXPECT_EQ(p.code[0], mk::lsl(reg::r1, reg::r2, 3));
  EXPECT_EQ(p.code[1].op2.shift.by_register, true);
  EXPECT_EQ(p.code[1].op2.shift.amount_reg, reg::r6);
}

TEST(Assembler, NopPseudo) {
  const program p = assemble("nop");
  ASSERT_EQ(p.code.size(), 1u);
  EXPECT_TRUE(isa::is_nop(p.code[0]));
}

TEST(Assembler, LdiExpandsToMovwMovt) {
  const program p = assemble("ldi r3, #0x12345678");
  ASSERT_EQ(p.code.size(), 2u);
  EXPECT_EQ(p.code[0], mk::movw(reg::r3, 0x5678));
  EXPECT_EQ(p.code[1], mk::movt(reg::r3, 0x1234));
}

TEST(Assembler, LdaLoadsSymbolAddress) {
  const program p = assemble(".data\n"
                             "table: .word 1, 2, 3\n"
                             ".text\n"
                             "lda r0, table\n");
  ASSERT_EQ(p.code.size(), 2u);
  const std::uint32_t addr = *p.symbol("table");
  EXPECT_EQ(p.code[0].imm16, addr & 0xffffU);
  EXPECT_EQ(p.code[1].imm16, addr >> 16);
}

TEST(Assembler, BranchToLabelOffsets) {
  const program p = assemble("start: nop\n"
                             "nop\n"
                             "b start\n"
                             "beq start\n");
  // Offset is relative to the *next* instruction.
  EXPECT_EQ(p.code[2].branch_offset, -3);
  EXPECT_EQ(p.code[3].branch_offset, -4);
}

TEST(Assembler, ForwardBranch) {
  const program p = assemble("b end\nnop\nnop\nend: nop\n");
  EXPECT_EQ(p.code[0].branch_offset, 2);
}

TEST(Assembler, MemoryOperandForms) {
  const program p = assemble("ldr r1, [r2]\n"
                             "ldr r1, [r2, #4]\n"
                             "ldr r1, [r2, #-4]\n"
                             "ldr r1, [r2, r3]\n"
                             "ldrb r1, [r2, r3, lsl #2]\n"
                             "str r1, [r2, -r3]\n");
  EXPECT_EQ(p.code[0].mem.offset_imm, 0u);
  EXPECT_EQ(p.code[1].mem.offset_imm, 4u);
  EXPECT_TRUE(p.code[2].mem.subtract);
  EXPECT_EQ(p.code[2].mem.offset_imm, 4u);
  EXPECT_TRUE(p.code[3].mem.reg_offset);
  EXPECT_EQ(p.code[4].mem.offset_shift, 2);
  EXPECT_TRUE(p.code[5].mem.subtract);
  EXPECT_TRUE(p.code[5].mem.reg_offset);
}

TEST(Assembler, DataDirectives) {
  const program p = assemble(".data\n"
                             "w: .word 0x11223344\n"
                             "h: .half 0x5566\n"
                             "b: .byte 0x77, 0x88\n"
                             ".align 8\n"
                             "s: .space 4\n");
  EXPECT_EQ(p.data[0], 0x44);
  EXPECT_EQ(p.data[3], 0x11);
  EXPECT_EQ(p.data[4], 0x66);
  EXPECT_EQ(p.data[6], 0x77);
  EXPECT_EQ(p.data[7], 0x88);
  EXPECT_EQ(*p.symbol("s") % 8, 0u);
  EXPECT_EQ(*p.symbol("w"), p.data_base);
}

TEST(Assembler, EquConstants) {
  const program p = assemble(".equ size, 0x40\nadd r1, r2, #size\n");
  EXPECT_EQ(p.code[0].op2.imm, 0x40u);
}

TEST(Assembler, LoHiExpressions) {
  const program p = assemble(".data\n.align 4\nbuf: .space 16\n.text\n"
                             "movw r0, #lo(buf)\nmovt r0, #hi(buf)\n");
  const std::uint32_t addr = *p.symbol("buf");
  EXPECT_EQ(p.code[0].imm16, addr & 0xffffU);
  EXPECT_EQ(p.code[1].imm16, addr >> 16);
}

TEST(Assembler, MultipleLabelsOnOneLine) {
  const program p = assemble("a: b: nop\n");
  EXPECT_EQ(*p.symbol("a"), *p.symbol("b"));
}

TEST(Assembler, ErrorUnknownMnemonic) {
  EXPECT_THROW(assemble("frobnicate r1"), util::assembly_error);
}

TEST(Assembler, ErrorUndefinedLabel) {
  EXPECT_THROW(assemble("b nowhere"), util::assembly_error);
}

TEST(Assembler, ErrorDuplicateLabel) {
  EXPECT_THROW(assemble("x: nop\nx: nop\n"), util::assembly_error);
}

TEST(Assembler, ErrorNonEncodableImmediateSuggestsLdi) {
  try {
    assemble("add r1, r2, #0x12345678");
    FAIL() << "expected assembly_error";
  } catch (const util::assembly_error& e) {
    EXPECT_NE(std::string(e.what()).find("ldi"), std::string::npos);
  }
}

TEST(Assembler, ErrorOversizedShift) {
  EXPECT_THROW(assemble("lsl r1, r2, #32"), util::assembly_error);
}

TEST(Assembler, ErrorInstructionInDataSection) {
  EXPECT_THROW(assemble(".data\nadd r1, r2, r3\n"), util::assembly_error);
}

TEST(Assembler, ErrorTrailingTokens) {
  EXPECT_THROW(assemble("nop nop"), util::assembly_error);
}

TEST(Assembler, ErrorReportsLineNumber) {
  try {
    assemble("nop\nnop\nbogus r1\n");
    FAIL() << "expected assembly_error";
  } catch (const util::assembly_error& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

TEST(Assembler, MulAndMla) {
  const program p = assemble("mul r1, r2, r3\nmla r4, r5, r6, r7\n");
  EXPECT_EQ(p.code[0], mk::mul(reg::r1, reg::r2, reg::r3));
  EXPECT_EQ(p.code[1], mk::mla(reg::r4, reg::r5, reg::r6, reg::r7));
}

TEST(Assembler, MarkAndHalt) {
  const program p = assemble("mark #7\nhalt\n");
  EXPECT_EQ(p.code[0].imm16, 7);
  EXPECT_EQ(p.code[1].op, opcode::halt);
}

TEST(Assembler, CustomBases) {
  assemble_options opts;
  opts.code_base = 0x8000;
  opts.data_base = 0x20000;
  const program p = assemble("start: nop\n.data\nd: .word 1\n", opts);
  EXPECT_EQ(*p.symbol("start"), 0x8000u);
  EXPECT_EQ(*p.symbol("d"), 0x20000u);
}

} // namespace
} // namespace usca::asmx
