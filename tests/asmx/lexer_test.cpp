#include "asmx/lexer.h"

#include <gtest/gtest.h>

#include "util/error.h"

namespace usca::asmx {
namespace {

TEST(Lexer, TokenizesInstructionLine) {
  const auto tokens = tokenize_line("add r1, r2, #7", 1);
  ASSERT_EQ(tokens.size(), 8u); // add r1 , r2 , # 7 EOL
  EXPECT_EQ(tokens[0].kind, token_kind::identifier);
  EXPECT_EQ(tokens[0].text, "add");
  EXPECT_EQ(tokens[2].kind, token_kind::comma);
  EXPECT_EQ(tokens[5].kind, token_kind::hash);
  EXPECT_EQ(tokens[6].kind, token_kind::integer);
  EXPECT_EQ(tokens[6].value, 7u);
  EXPECT_EQ(tokens.back().kind, token_kind::end);
}

TEST(Lexer, LowercasesIdentifiers) {
  const auto tokens = tokenize_line("ADD R1, R2, R3", 1);
  EXPECT_EQ(tokens[0].text, "add");
  EXPECT_EQ(tokens[1].text, "r1");
}

TEST(Lexer, NumberFormats) {
  EXPECT_EQ(tokenize_line("0x1F", 1)[0].value, 0x1fu);
  EXPECT_EQ(tokenize_line("0b1010", 1)[0].value, 10u);
  EXPECT_EQ(tokenize_line("4095", 1)[0].value, 4095u);
  EXPECT_EQ(tokenize_line("0xffffffff", 1)[0].value, 0xffffffffu);
}

TEST(Lexer, CommentsAreStripped) {
  EXPECT_EQ(tokenize_line("nop ; comment", 1).size(), 2u);
  EXPECT_EQ(tokenize_line("nop @ comment", 1).size(), 2u);
  EXPECT_EQ(tokenize_line("nop // comment", 1).size(), 2u);
  EXPECT_EQ(tokenize_line("; pure comment", 1).size(), 1u);
}

TEST(Lexer, BracketsAndLabels) {
  const auto tokens = tokenize_line("loop: ldr r1, [r2, #-4]", 1);
  EXPECT_EQ(tokens[0].text, "loop");
  EXPECT_EQ(tokens[1].kind, token_kind::colon);
  bool has_lbracket = false;
  bool has_minus = false;
  for (const auto& t : tokens) {
    has_lbracket |= t.kind == token_kind::lbracket;
    has_minus = has_minus || t.kind == token_kind::minus;
  }
  EXPECT_TRUE(has_lbracket);
  EXPECT_TRUE(has_minus);
}

TEST(Lexer, DirectiveIdentifiersKeepDot) {
  const auto tokens = tokenize_line(".word 1, 2", 1);
  EXPECT_EQ(tokens[0].text, ".word");
}

TEST(Lexer, RejectsOversizedLiteral) {
  EXPECT_THROW(tokenize_line("4294967296", 3), util::assembly_error);
}

TEST(Lexer, RejectsMalformedHex) {
  EXPECT_THROW(tokenize_line("0x", 1), util::assembly_error);
}

TEST(Lexer, RejectsStrayCharacter) {
  try {
    tokenize_line("add r1, r2, $3", 7);
    FAIL() << "expected assembly_error";
  } catch (const util::assembly_error& e) {
    EXPECT_EQ(e.line(), 7);
    EXPECT_GT(e.column(), 0);
  }
}

TEST(Lexer, ColumnsAreOneBased) {
  const auto tokens = tokenize_line("mov r1, r2", 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].column, 5);
}

} // namespace
} // namespace usca::asmx
