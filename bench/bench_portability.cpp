// Experiment H2 (extension) — portable side-channel security.
//
// The paper's introduction motivates the whole study with portability:
// "guaranteeing that a software side-channel resistant library preserves
// both its functional properties, and its side-channel security when
// executed on different, ISA-compliant, processors".  This bench
// demonstrates the failure mode concretely:
//
//     eor r1, r2, r3        ; r2 = share a0, r3 = mask
//     eor r5, r4, #0x55     ; r4 = share a1
//
// On the Cortex-A7 the pair dual-issues (ALU + ALU-imm), so a0 and a1
// travel different operand buses: the gadget is clean.  On a scalar,
// ISA-compatible core the same two instructions issue back-to-back over
// the same bus: HD(a0, a1) = HW(a) leaks.  The static scanner, the
// taint-aware hardening pass and dynamic measurement all agree — and the
// pass produces a binary that is clean on *both* cores.
#include <cmath>
#include <cstdio>

#include "asmx/assembler.h"
#include "bench_util.h"
#include "core/acquisition.h"
#include "core/leakage_aware_scheduler.h"
#include "isa/disasm.h"
#include "power/synthesizer.h"
#include "sim/backend.h"
#include "stats/pearson.h"
#include "util/bitops.h"
#include "util/rng.h"

using namespace usca;
using isa::reg;

namespace {

// Acquisition runs through the generic campaign engine: worker-owned
// resettable pipelines, per-index seeding, in-order delivery — the
// correlation sweep below is bit-identical at any thread count.
double hw_secret_correlation(const asmx::program& prog,
                             const sim::micro_arch_config& config,
                             std::uint64_t seed) {
  core::acquisition_config acq;
  acq.traces = 8'000;
  acq.seed = seed;
  acq.full_run_window = true; // the gadget is unmarked: synthesize it all
  acq.uarch = config;
  core::acquisition_campaign campaign(sim::program_image(prog), acq);
  campaign.set_setup([](std::size_t, util::xoshiro256& rng,
                        sim::backend& pipe, std::vector<double>& labels) {
    const std::uint32_t secret = rng.next_u32();
    const std::uint32_t mask = rng.next_u32();
    pipe.state().set_reg(reg::r2, secret ^ mask); // a0
    pipe.state().set_reg(reg::r3, rng.next_u32());
    pipe.state().set_reg(reg::r4, mask);          // a1
    labels.assign(1, static_cast<double>(util::hamming_weight(secret)));
  });

  std::vector<stats::pearson_accumulator> acc;
  campaign.run([&](core::acquisition_record&& rec) {
    if (acc.size() < rec.samples.size()) {
      // Full-run windows track the cycle count, which may be
      // input-dependent; grow the per-sample accumulators to the longest
      // trace seen (shorter traces simply contribute fewer points).
      acc.resize(rec.samples.size());
    }
    for (std::size_t s = 0; s < rec.samples.size(); ++s) {
      acc[s].add(rec.labels[0], rec.samples[s]);
    }
  });

  double best = 0.0;
  for (const stats::pearson_accumulator& a : acc) {
    best = std::max(best, std::fabs(a.correlation()));
  }
  return best;
}

void report_line(const char* program_name, const char* core,
                 std::size_t static_findings, double corr,
                 double threshold) {
  std::printf("  %-22s %-12s %zu%-18s %.4f  %s\n", program_name, core,
              static_findings, " static finding(s)", corr,
              corr > threshold ? "LEAKS" : "clean");
}

} // namespace

int main(int argc, char** argv) {
  const bench::arg_map args(argc, argv);
  (void)args;
  std::printf("== H2: portable side-channel security across ISA-compatible "
              "cores ==\n\n");

  const asmx::program gadget = asmx::assemble("eor r1, r2, r3\n"
                                              "eor r5, r4, #0x55\n"
                                              "halt\n");
  std::printf("gadget (r2/r4 = shares of the secret, r3 = fresh mask):\n");
  for (std::size_t i = 0; i < gadget.code.size(); ++i) {
    std::printf("  %zu: %s\n", i, isa::disassemble(gadget.code[i]).c_str());
  }
  std::printf("\n");

  const sim::micro_arch_config a7 = sim::cortex_a7();
  const sim::micro_arch_config scalar = sim::cortex_a7_scalar();
  const std::set<reg> shares = {reg::r2, reg::r4};
  const core::leakage_aware_scheduler on_a7(a7);
  const core::leakage_aware_scheduler on_scalar(scalar);
  const double threshold = stats::significance_threshold(8'000, 0.995);

  std::printf("  %-22s %-12s %-20s %-7s\n", "program", "core", "scan",
              "max |corr(HW(a))|");
  bench::print_rule(74);
  report_line("original", "Cortex-A7", on_a7.secret_findings(gadget, shares),
              hw_secret_correlation(gadget, a7, 31), threshold);
  report_line("original", "scalar",
              on_scalar.secret_findings(gadget, shares),
              hw_secret_correlation(gadget, scalar, 31), threshold);

  // Harden for the *scalar* worst case; the result must stay clean on the
  // dual-issue core too (it only adds separation).
  core::hardening_options options;
  options.secret_registers = shares;
  const core::hardening_result hardened = on_scalar.harden(gadget, options);
  std::printf("\nhardening for the scalar core: %zu -> %zu finding(s) "
              "(%d swap(s), %d reorder(s), %d separator(s))\n\n",
              hardened.findings_before, hardened.findings_after,
              hardened.swaps, hardened.reorders, hardened.separators);

  report_line("hardened", "scalar",
              on_scalar.secret_findings(hardened.hardened, shares),
              hw_secret_correlation(hardened.hardened, scalar, 31),
              threshold);
  report_line("hardened", "Cortex-A7",
              on_a7.secret_findings(hardened.hardened, shares),
              hw_secret_correlation(hardened.hardened, a7, 31), threshold);

  std::printf("\nconclusion: dual-issue separated the shares on the A7; the "
              "identical binary\nrecombined them on a scalar ISA-compatible "
              "core.  Side-channel security does\nnot port across "
              "micro-architectures — the paper's central warning.\n");

  const bool shape_ok =
      on_a7.secret_findings(gadget, shares) == 0 &&
      on_scalar.secret_findings(gadget, shares) > 0 &&
      on_scalar.secret_findings(hardened.hardened, shares) == 0;
  return shape_ok ? 0 : 1;
}
