// Experiment B3 (extension) — speculation-depth leakage ablation.
//
// The speculation subsystem makes wrong-path µop activity a first-class
// leakage source.  The paper's constant-time AES never mispredicts —
// its only branches are direct calls and RSB-covered returns, so every
// predictor design point produces the same schedule (the control row
// below measures exactly that).  The interesting axis needs a victim
// with secret-dependent control flow: the branchy AES variant
// (crypto::generate_aes128_branchy_program) implements xtime's
// reduction as a real branch whose direction is a round-state bit, the
// classic non-constant-time shape.  On it, each predictor design point
// converts a different fraction of those secret bits into mispredicts,
// recovery bubbles and wrong-path rename/load activity:
//
//   * perfect prediction — the timing side channel of the skipped eor
//     alone (no wrong path);
//   * static BTFN / bimodal / gshare — per-point mispredict rates, each
//     mispredict spilling the secret branch direction into BP-table,
//     BTB-port and wrong-path µop toggles;
//   * an under-sized gshare (16-entry) whose aliasing keeps the
//     mispredict rate highest.
//
// Metrics per design point, following bench_ooo_ablation: CPA
// measurements-to-disclosure (key byte 0, HW(SubBytes-out), Fisher-z >
// 2.326) on prefixes of one acquired matrix; full-key recovery; TVLA
// fixed-vs-random max |t|.  Speculating configs have no batched
// counterpart — the campaign transparently runs them per-trace.
//
// Defaults: max_traces=1200, tvla_traces=800, averaging=4.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/acquisition.h"
#include "crypto/aes_codegen.h"
#include "sim/ooo/ooo_core.h"
#include "stats/attack_metrics.h"
#include "stats/cpa.h"
#include "stats/ttest.h"
#include "util/bitops.h"

using namespace usca;

namespace {

const crypto::aes_key bench_key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                                   0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                                   0x09, 0xcf, 0x4f, 0x3c};

struct spec_cell {
  const char* name;
  sim::speculation_config spec;
};

struct cell_result {
  std::size_t mtd = 0;
  int full_key_bytes = 0;
  std::size_t window_samples = 0;
  std::uint64_t mispredicts = 0; ///< one full run, zero plaintext
  double tvla_max_t = 0.0;
  std::size_t tvla_leaking = 0;
};

core::acquisition_config base_config(const sim::speculation_config& spec,
                                     std::size_t traces, unsigned threads,
                                     int averaging, std::uint64_t seed) {
  core::acquisition_config config;
  config.traces = traces;
  config.threads = threads;
  config.seed = seed;
  config.averaging = averaging;
  config.window = core::campaign_window{crypto::mark_encrypt_begin,
                                        crypto::mark_round1_end};
  config.backend = sim::backend_kind::ooo;
  config.uarch = sim::cortex_a7_ooo_spec(spec);
  return config;
}

core::acquisition_campaign
make_campaign(const crypto::aes_program_layout& layout,
              const crypto::aes_round_keys& rk,
              const core::acquisition_config& config, bool fixed_vs_random) {
  core::acquisition_campaign campaign(sim::program_image(layout.prog),
                                      config);
  const crypto::aes_block fixed_pt = {0xda, 0x39, 0xa3, 0xee, 0x5e, 0x6b,
                                      0x4b, 0x0d, 0x32, 0x55, 0xbf, 0xef,
                                      0x95, 0x60, 0x18, 0x90};
  campaign.set_setup([&layout, &rk, fixed_pt, fixed_vs_random](
                         std::size_t index, util::xoshiro256& rng,
                         sim::backend& core, std::vector<double>& labels) {
    crypto::aes_block pt;
    for (auto& b : pt) {
      b = rng.next_u8();
    }
    if (fixed_vs_random && index % 2 == 0) {
      pt = fixed_pt;
    }
    crypto::install_aes_inputs(core.memory(), layout, rk, pt);
    labels.resize(pt.size());
    for (std::size_t b = 0; b < pt.size(); ++b) {
      labels[b] = static_cast<double>(pt[b]);
    }
  });
  return campaign;
}

cell_result run_cell(const crypto::aes_program_layout& layout,
                     const crypto::aes_round_keys& rk, const spec_cell& cell,
                     std::size_t max_traces, std::size_t tvla_traces,
                     int averaging, unsigned threads, std::uint64_t seed) {
  cell_result out;

  // --- mispredict census: one plain run of the victim ------------------
  {
    sim::ooo_core core(sim::program_image(layout.prog),
                       sim::cortex_a7_ooo_spec(cell.spec));
    core.set_record_activity(false);
    crypto::install_aes_inputs(core.memory(), layout, rk,
                               crypto::aes_block{});
    core.warm_caches();
    core.run();
    out.mispredicts = core.mispredicts();
  }

  // --- CPA campaign: acquire once, evaluate MTD on prefixes ------------
  // The branchy victim's timing is data-dependent, so windows differ in
  // length per trace; every trace is truncated to the shortest before
  // the fixed-width CPA/TVLA accumulators see it.
  std::vector<power::trace> traces;
  std::vector<std::vector<double>> labels;
  traces.reserve(max_traces);
  labels.reserve(max_traces);
  core::acquisition_campaign campaign = make_campaign(
      layout, rk,
      base_config(cell.spec, max_traces, threads, averaging, seed), false);
  campaign.run([&](core::acquisition_record&& rec) {
    labels.push_back(std::move(rec.labels));
    traces.push_back(std::move(rec.samples));
  });
  std::size_t samples = traces.front().size();
  for (const power::trace& t : traces) {
    samples = std::min(samples, t.size());
  }
  out.window_samples = samples;

  const auto model_at = [&](std::size_t byte_index, std::size_t n) {
    stats::cpa_engine cpa(samples, 256);
    std::vector<double> h(256);
    for (std::size_t t = 0; t < std::min(n, traces.size()); ++t) {
      const auto pt_byte =
          static_cast<std::uint8_t>(labels[t][byte_index]);
      for (std::size_t g = 0; g < 256; ++g) {
        h[g] = util::hamming_weight(crypto::subbytes_hypothesis(
            pt_byte, static_cast<std::uint8_t>(g)));
      }
      cpa.add_trace(std::span<const double>(traces[t]).first(samples), h);
    }
    return cpa.solve();
  };

  out.mtd = stats::measurements_to_disclosure(
      [&](std::size_t n) {
        return model_at(0, n).distinguishing_z(bench_key[0]);
      },
      2.326, 50, max_traces);

  for (std::size_t b = 0; b < 16; ++b) {
    if (model_at(b, max_traces).rank_of(bench_key[b]) == 0) {
      ++out.full_key_bytes;
    }
  }

  // --- TVLA campaign: fixed-vs-random keyed on index parity ------------
  core::acquisition_config tvla_config = base_config(
      cell.spec, tvla_traces, threads, averaging, seed ^ 0x51ec0000ULL);
  core::acquisition_campaign tvla_campaign =
      make_campaign(layout, rk, tvla_config, true);
  stats::tvla_accumulator acc(0);
  std::vector<power::trace> fixed_traces;
  std::vector<power::trace> random_traces;
  std::size_t tvla_samples = ~std::size_t{0};
  tvla_campaign.run([&](core::acquisition_record&& rec) {
    tvla_samples = std::min(tvla_samples, rec.samples.size());
    (rec.index % 2 == 0 ? fixed_traces : random_traces)
        .push_back(std::move(rec.samples));
  });
  acc = stats::tvla_accumulator(tvla_samples);
  for (const power::trace& t : fixed_traces) {
    acc.add_fixed(std::span<const double>(t).first(tvla_samples));
  }
  for (const power::trace& t : random_traces) {
    acc.add_random(std::span<const double>(t).first(tvla_samples));
  }
  out.tvla_max_t = acc.max_abs_t();
  out.tvla_leaking = acc.leaking_samples();
  return out;
}

sim::speculation_config spec_of(sim::predictor_kind kind) {
  sim::speculation_config spec;
  spec.predictor = kind;
  return spec;
}

} // namespace

int main(int argc, char** argv) {
  const bench::arg_map args(argc, argv);
  const std::size_t max_traces = args.get_size("max_traces", 1'200);
  const std::size_t tvla_traces = args.get_size("tvla_traces", 800);
  const int averaging = static_cast<int>(args.get_size("averaging", 4));
  const auto threads = static_cast<unsigned>(args.get_size("threads", 0));
  const std::uint64_t seed = args.get_size("seed", 0x51ec7a);

  sim::speculation_config tiny_gshare = spec_of(sim::predictor_kind::gshare);
  tiny_gshare.bp_table_bits = 4;
  tiny_gshare.history_bits = 4;

  const spec_cell cells[] = {
      {"perfect (no wrong path)", spec_of(sim::predictor_kind::perfect)},
      {"static BTFN", spec_of(sim::predictor_kind::static_btfn)},
      {"bimodal 1K", spec_of(sim::predictor_kind::bimodal)},
      {"gshare 1K h8", spec_of(sim::predictor_kind::gshare)},
      {"gshare 16-entry (alias)", tiny_gshare},
  };

  const crypto::aes_program_layout layout =
      crypto::generate_aes128_branchy_program();
  const crypto::aes_round_keys rk = crypto::expand_key(bench_key);

  std::printf("== B3: speculation-depth leakage ablation (OoO 2-wide, "
              "branchy AES) ==\n");
  std::printf("   victim: xtime reduction as a key-dependent branch "
              "(non-constant-time AES)\n");
  std::printf("   CPA: HW(SubBytes out), key byte 0, round-1 window, "
              "MTD at Fisher-z > 2.326\n");
  std::printf("   campaigns: %zu CPA traces, %zu TVLA traces, averaging "
              "%d\n\n",
              max_traces, tvla_traces, averaging);
  std::printf("%-24s | %7s | %9s | %9s | %8s | %10s | %8s\n", "predictor",
              "window", "mispred", "CPA MTD", "key/16", "TVLA max|t|",
              "|t|>4.5");
  std::printf("-------------------------+---------+-----------+-----------+"
              "----------+------------+---------\n");

  for (const spec_cell& cell : cells) {
    const cell_result r = run_cell(layout, rk, cell, max_traces, tvla_traces,
                                   averaging, threads, seed);
    char mtd_text[32];
    if (r.mtd >= max_traces) {
      std::snprintf(mtd_text, sizeof mtd_text, ">%zu", max_traces);
    } else {
      std::snprintf(mtd_text, sizeof mtd_text, "%zu", r.mtd);
    }
    std::printf("%-24s | %7zu | %9llu | %9s | %5d/16 | %10.1f | %8zu\n",
                cell.name, r.window_samples,
                static_cast<unsigned long long>(r.mispredicts), mtd_text,
                r.full_key_bytes, r.tvla_max_t, r.tvla_leaking);
  }

  // Control: the paper's constant-time AES never mispredicts — every
  // branch is a direct call or an RSB-covered return — so the predictor
  // design point cannot matter there.
  {
    const crypto::aes_program_layout ct = crypto::generate_aes128_program();
    sim::ooo_core core(sim::program_image(ct.prog),
                       sim::cortex_a7_ooo_spec(tiny_gshare));
    core.set_record_activity(false);
    crypto::install_aes_inputs(core.memory(), ct, rk, crypto::aes_block{});
    core.warm_caches();
    core.run();
    std::printf("\ncontrol: constant-time AES under the worst predictor "
                "(gshare 16-entry): %llu mispredicts\n",
                static_cast<unsigned long long>(core.mispredicts()));
  }

  std::printf("\nReading: every mispredict is a secret branch direction\n"
              "spilled into the schedule — a recovery bubble plus wrong-path\n"
              "rename/load toggles — so trainable predictors move leakage\n"
              "that was purely timing (perfect row) into wrong-path µop\n"
              "activity, and the attack cost tracks the mispredict rate,\n"
              "not the ISA-level code.\n");
  return 0;
}
