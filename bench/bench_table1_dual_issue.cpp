// Experiment T1 — reproduces Table 1 of the paper: "Instruction pairs
// executed in dual-issue by the Cortex-A7 MPCore CPU".
//
// Method (Section 3.2): for every ordered pair of instruction classes,
// run 200 repetitions of the pair framed by pipeline-flushing nops,
// measure CPI between trigger markers, and compare against an
// artificially RAW-hazarded variant.  CPI 0.5 => dual-issued.
//
// All 49x3 pair measurements run on one resettable pipeline (rebind per
// probe program) instead of constructing a simulator per measurement.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "core/cpi_explorer.h"

using namespace usca;
using core::num_probe_classes;
using core::probe_class;

namespace {

// The paper's measured matrix (rows = older, cols = younger).
constexpr bool paper_matrix[num_probe_classes][num_probe_classes] = {
    /* mov   */ {true, true, true, false, true, true, false},
    /* ALU   */ {true, false, true, false, false, true, false},
    /* ALUi  */ {true, true, true, false, true, true, true},
    /* mul   */ {false, false, false, false, false, true, false},
    /* shift */ {false, false, true, false, false, true, false},
    /* br    */ {true, true, true, true, true, false, true},
    /* ld/st */ {true, false, true, false, false, true, false},
};

// Table 1 presents rows in this order: mov, ALU, ALU w/ imm, branch,
// ld/st, mul, shifts.
constexpr probe_class paper_row_order[num_probe_classes] = {
    probe_class::mov,    probe_class::alu, probe_class::alu_imm,
    probe_class::branch, probe_class::ld_st, probe_class::mul,
    probe_class::shift,
};

} // namespace

int main(int argc, char** argv) {
  const bench::arg_map args(argc, argv);
  (void)args;

  std::printf("== Table 1: dual-issue pair matrix (measured via CPI) ==\n");
  std::printf("   benchmark: 200 reps of each ordered pair, 100 flush nops,"
              " trigger-marker timing\n\n");

  const core::cpi_explorer explorer(sim::cortex_a7());
  const core::dual_issue_matrix matrix = explorer.explore();

  std::printf("%-12s", "older \\ younger");
  for (std::size_t col = 0; col < num_probe_classes; ++col) {
    std::printf(" %-11s",
                std::string(probe_class_name(static_cast<probe_class>(col)))
                    .c_str());
  }
  std::printf("\n");
  bench::print_rule(12 + 12 * static_cast<int>(num_probe_classes));

  int mismatches = 0;
  for (const probe_class row : paper_row_order) {
    std::printf("%-15s", std::string(probe_class_name(row)).c_str());
    for (std::size_t col = 0; col < num_probe_classes; ++col) {
      const auto& cell =
          matrix.entry[static_cast<std::size_t>(row)][col];
      const bool paper =
          paper_matrix[static_cast<std::size_t>(row)][col];
      const char* symbol = cell.dual_issued ? "Y" : "n";
      const char* verdict = cell.dual_issued == paper ? " " : "!";
      std::printf(" %s%s(%.2f)   ", symbol, verdict, cell.cpi_hazard_free);
      mismatches += cell.dual_issued == paper ? 0 : 1;
    }
    std::printf("\n");
  }
  std::printf("\nlegend: Y = dual-issued (CPI~0.5), n = single-issued"
              " (CPI~1); '!' marks disagreement with the paper\n");

  std::printf("\n== hazarded variants (artificial RAW -> never dual) ==\n");
  for (std::size_t cls = 0; cls < num_probe_classes; ++cls) {
    const auto pc = static_cast<probe_class>(cls);
    const core::pair_measurement m = explorer.measure_pair(pc, pc);
    if (std::isnan(m.cpi_hazarded)) {
      std::printf("  %-12s hazard-free CPI %.3f, no hazard variant\n",
                  std::string(probe_class_name(pc)).c_str(),
                  m.cpi_hazard_free);
    } else {
      std::printf("  %-12s hazard-free CPI %.3f, hazarded CPI %.3f\n",
                  std::string(probe_class_name(pc)).c_str(),
                  m.cpi_hazard_free, m.cpi_hazarded);
    }
  }

  std::printf("\nresult: %d/%zu cells match the paper's Table 1\n",
              static_cast<int>(num_probe_classes * num_probe_classes) -
                  mismatches,
              num_probe_classes * num_probe_classes);
  return mismatches == 0 ? 0 : 1;
}
