// Experiment P1 — engineering throughput of the simulation stack.
//
// Two modes:
//
//  * default: google-benchmark micro-benchmarks of the individual layers
//    (functional executor, pipeline with/without activity, AES run, trace
//    synthesis, CPA accumulation/solve);
//  * --json[=FILE] [traces=N averaging=M threads=T seed=S]: the campaign
//    hot path measured end to end — the acquisition loop every 100k-trace
//    experiment of the paper runs on — reported as machine-readable JSON
//    (traces/sec and simulated cycles/sec for BOTH backends — in-order and
//    OoO, including the speculating OoO front end — plus accumulator
//    ns/sample, trace-store write/replay MB/s,
//    and the fabric merge / salvage scan MB/s of the robustness layer)
//    so speedups can be pinned in-repo (BENCH_hotpath.json) and tracked
//    by CI.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "asmx/program.h"
#include "bench_util.h"
#include "core/analysis_sinks.h"
#include "core/campaign.h"
#include "core/campaign_fabric.h"
#include "stats/batch_kernels.h"
#include "crypto/aes_codegen.h"
#include "power/synthesizer.h"
#include "power/trace_io.h"
#include "power/trace_store_reader.h"
#include "sim/batch_sim.h"
#include "sim/functional_executor.h"
#include "sim/pipeline.h"
#include "stats/cpa.h"
#include "stats/ttest.h"
#include "util/bitops.h"
#include "util/json_writer.h"
#include "util/rng.h"

using namespace usca;

namespace {

asmx::program make_alu_loop(int instructions) {
  asmx::program_builder b;
  for (int i = 0; i < instructions; ++i) {
    b.emit(isa::ins::add(isa::reg::r1, isa::reg::r2, isa::reg::r3));
    b.emit(isa::ins::eor(isa::reg::r4, isa::reg::r5, isa::reg::r6));
  }
  return b.build();
}

void BM_FunctionalExecutorMips(benchmark::State& state) {
  const asmx::program prog = make_alu_loop(2'000);
  for (auto _ : state) {
    sim::functional_executor exec(prog);
    exec.run();
    benchmark::DoNotOptimize(exec.state().regs[1]);
  }
  state.SetItemsProcessed(state.iterations() * 4'001);
}
BENCHMARK(BM_FunctionalExecutorMips);

void BM_PipelineCyclesPerSecond(benchmark::State& state) {
  const sim::program_image image(make_alu_loop(2'000));
  const bool record = state.range(0) != 0;
  sim::pipeline pipe(image, sim::cortex_a7());
  pipe.set_record_activity(record);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    pipe.reset();
    pipe.warm_caches();
    pipe.run();
    cycles += pipe.cycles();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
  state.SetLabel(record ? "activity recorded" : "timing only");
}
BENCHMARK(BM_PipelineCyclesPerSecond)->Arg(0)->Arg(1);

void BM_AesEncryptionOnPipeline(benchmark::State& state) {
  const crypto::aes_program_layout layout = crypto::generate_aes128_program();
  const crypto::aes_round_keys rk = crypto::expand_key(crypto::aes_key{});
  const sim::program_image image(layout.prog);
  const bool reuse = state.range(0) != 0;
  util::xoshiro256 rng(1);
  sim::pipeline reused(image, sim::cortex_a7());
  for (auto _ : state) {
    crypto::aes_block pt;
    for (auto& b : pt) {
      b = rng.next_u8();
    }
    if (reuse) {
      reused.reset();
      crypto::install_aes_inputs(reused.memory(), layout, rk, pt);
      reused.warm_caches();
      reused.run();
      benchmark::DoNotOptimize(reused.cycles());
    } else {
      sim::pipeline pipe(image, sim::cortex_a7());
      crypto::install_aes_inputs(pipe.memory(), layout, rk, pt);
      pipe.warm_caches();
      pipe.run();
      benchmark::DoNotOptimize(pipe.cycles());
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(reuse ? "reset + reuse" : "fresh pipeline per block");
}
BENCHMARK(BM_AesEncryptionOnPipeline)->Arg(0)->Arg(1);

void BM_TraceSynthesis(benchmark::State& state) {
  const crypto::aes_program_layout layout = crypto::generate_aes128_program();
  const crypto::aes_round_keys rk = crypto::expand_key(crypto::aes_key{});
  sim::pipeline pipe(layout.prog, sim::cortex_a7());
  crypto::install_aes_inputs(pipe.memory(), layout, rk, crypto::aes_block{});
  pipe.warm_caches();
  pipe.run();
  power::trace_synthesizer synth(power::synthesis_config{}, 3);
  const auto end = static_cast<std::uint32_t>(pipe.cycles());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        synth.synthesize_averaged(pipe.activity(), 0, end, 16));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSynthesis);

void BM_CpaSolvePartitioned(benchmark::State& state) {
  const std::size_t samples = 300;
  stats::partitioned_cpa cpa(samples);
  util::xoshiro256 rng(4);
  std::vector<double> trace(samples);
  for (int t = 0; t < 2'000; ++t) {
    for (auto& v : trace) {
      v = rng.next_gaussian();
    }
    cpa.add_trace(rng.next_u8(), trace);
  }
  const auto model = [](std::size_t g, std::size_t p) {
    return static_cast<double>(
        util::hamming_weight(static_cast<std::uint32_t>(g ^ p)));
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpa.solve(model, 256));
  }
  state.SetLabel("2000 traces x 300 samples x 256 guesses");
}
BENCHMARK(BM_CpaSolvePartitioned);

void BM_CpaAddTraceNaive(benchmark::State& state) {
  const std::size_t samples = 300;
  stats::cpa_engine cpa(samples, 256);
  util::xoshiro256 rng(5);
  std::vector<double> trace(samples);
  std::vector<double> hypotheses(256);
  for (auto& h : hypotheses) {
    h = rng.next_double();
  }
  for (auto& v : trace) {
    v = rng.next_gaussian();
  }
  for (auto _ : state) {
    cpa.add_trace(trace, hypotheses);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CpaAddTraceNaive);

// ---------------------------------------------------------------------------
// --json mode: the campaign hot path, end to end
// ---------------------------------------------------------------------------

struct hot_path_report {
  std::size_t traces = 0;
  int averaging = 0;
  unsigned threads = 0;
  std::size_t samples_per_trace = 0;
  double seconds = 0.0;
  double traces_per_sec = 0.0;
  double sim_cycles_per_sec = 0.0;
  // Same campaign batched through the SoA batch backend
  // (sim/batch_sim.h) — the default production path; the per-trace
  // numbers above are its same-run reference denominator.
  std::size_t sim_batch_lanes = 0;
  double sim_batched_seconds = 0.0;
  double sim_batched_traces_per_sec = 0.0;
  // Same campaign on the out-of-order backend (sim::ooo_core).
  std::size_t ooo_samples_per_trace = 0;
  double ooo_seconds = 0.0;
  double ooo_traces_per_sec = 0.0;
  double ooo_sim_cycles_per_sec = 0.0;
  double ooo_sim_batched_seconds = 0.0;
  double ooo_sim_batched_traces_per_sec = 0.0;
  // Same OoO campaign forced onto the reference scan scheduler
  // (sim::ooo_scheduler::reference).  The fast/reference ratio is a
  // machine-independent speedup measurement — both numbers come from the
  // same run on the same hardware — so CI can assert a hard floor on it
  // where an absolute traces/sec threshold would be hostage to runner
  // noise.
  double ooo_reference_seconds = 0.0;
  double ooo_reference_traces_per_sec = 0.0;
  // Same OoO campaign with the speculation front end enabled (bimodal
  // predictor + BTB + RSB, sim/ooo/speculation.h).  Speculating configs
  // have no batched counterpart — the campaign transparently falls back
  // to per-trace lanes — so this number prices the whole subsystem:
  // predictor/BTB lookups, checkpointing, and (on victims with
  // conditional branches) wrong-path rename and recovery.  The ratio
  // against ooo_traces_per_sec is same-run, same-hardware.
  double ooo_spec_seconds = 0.0;
  double ooo_spec_traces_per_sec = 0.0;
  double cpa_accumulate_ns_per_sample = 0.0;
  double tvla_accumulate_ns_per_sample = 0.0;
  // Batched accumulator throughput (stats/batch_kernels.h dispatch).
  const char* batch_kernel = "generic";
  double cpa_batch_accumulate_gb_per_sec = 0.0;
  double tvla_batch_accumulate_gb_per_sec = 0.0;
  // Trace-store throughput (pure I/O, no simulation in the loop).
  double store_write_mb_per_sec = 0.0;
  double store_replay_mb_per_sec = 0.0;
  double store_replay_traces_per_sec = 0.0;
  double store_replay_batched_traces_per_sec = 0.0;
  double store_bytes_per_trace = 0.0;
  // Fabric-layer throughput: shard concatenation (validated
  // reader.stream -> writer.append replay-append) and the salvage-mode
  // structural scan a damaged-store open performs.
  double fabric_merge_mb_per_sec = 0.0;
  double salvage_scan_mb_per_sec = 0.0;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// ns/sample of streaming `reps` synthetic traces into `add`.
template <typename Add>
double accumulate_ns_per_sample(std::size_t samples, std::size_t reps,
                                Add&& add) {
  util::xoshiro256 rng(0x5eed);
  std::vector<double> trace(samples);
  for (auto& v : trace) {
    v = 5.0 + rng.next_gaussian();
  }
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    add(r, trace);
  }
  const double elapsed = seconds_since(start);
  return 1e9 * elapsed / static_cast<double>(samples * reps);
}

hot_path_report measure_hot_path(const bench::arg_map& args) {
  hot_path_report report;
  report.traces = args.get_size("traces", 600);
  report.averaging = static_cast<int>(args.get_size("averaging", 16));
  report.threads = static_cast<unsigned>(args.get_size("threads", 1));

  const crypto::aes_key key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                               0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                               0x09, 0xcf, 0x4f, 0x3c};
  core::campaign_config config;
  config.traces = report.traces;
  config.threads = report.threads == 0 ? 1 : report.threads;
  config.seed = args.get_size("seed", 0x7077);
  config.averaging = report.averaging;
  config.window = {crypto::mark_encrypt_begin, crypto::mark_round1_end};
  // Per-trace simulation for the baseline numbers; the batched measures
  // below flip only this knob, so each batched/per-trace ratio is a
  // same-run, same-hardware speedup.
  config.sim_batch_lanes = 0;
  core::trace_campaign campaign(config, key);

  // Warm-up outside the timed region (page faults, code paths, caches).
  (void)campaign.produce(0);

  // A bounded prefix of the in-order campaign's records doubles as the
  // workload for the trace-store throughput measurement below (bounded
  // so a 100k-trace hot-path run stays constant-memory).
  const std::size_t store_bench_traces =
      std::min<std::size_t>(report.traces, 2'000);
  std::vector<power::trace> archived_samples;
  std::vector<std::array<double, 16>> archived_labels;
  archived_samples.reserve(store_bench_traces);
  archived_labels.reserve(store_bench_traces);

  std::uint64_t simulated_cycles = 0;
  const auto start = std::chrono::steady_clock::now();
  campaign.run([&](core::trace_record&& rec) {
    report.samples_per_trace = rec.samples.size();
    simulated_cycles += rec.cycles;
    if (archived_samples.size() < store_bench_traces) {
      std::array<double, 16> labels;
      for (std::size_t b = 0; b < labels.size(); ++b) {
        labels[b] = static_cast<double>(rec.plaintext[b]);
      }
      archived_labels.push_back(labels);
      archived_samples.push_back(std::move(rec.samples));
    }
  });
  report.seconds = seconds_since(start);
  report.traces_per_sec =
      static_cast<double>(report.traces) / report.seconds;
  report.sim_cycles_per_sec =
      static_cast<double>(simulated_cycles) / report.seconds;

  // The identical campaign through the batched SoA backend (the default
  // lane count, or whatever USCA_SIM_BATCH selects).
  config.sim_batch_lanes = -1;
  report.sim_batch_lanes = sim::resolve_sim_batch_lanes(-1);
  {
    core::trace_campaign batched(config, key);
    (void)batched.produce(0);
    const auto batched_start = std::chrono::steady_clock::now();
    batched.run([](core::trace_record&&) {});
    report.sim_batched_seconds = seconds_since(batched_start);
    report.sim_batched_traces_per_sec =
        static_cast<double>(report.traces) / report.sim_batched_seconds;
  }
  config.sim_batch_lanes = 0;

  // The same campaign on the OoO backend, so backend regressions are
  // visible in the same artifact as the in-order number.
  config.backend = sim::backend_kind::ooo;
  config.uarch = sim::cortex_a7_ooo();
  core::trace_campaign ooo_campaign(config, key);
  (void)ooo_campaign.produce(0);
  std::uint64_t ooo_cycles = 0;
  const auto ooo_start = std::chrono::steady_clock::now();
  ooo_campaign.run([&](core::trace_record&& rec) {
    report.ooo_samples_per_trace = rec.samples.size();
    ooo_cycles += rec.cycles;
  });
  report.ooo_seconds = seconds_since(ooo_start);
  report.ooo_traces_per_sec =
      static_cast<double>(report.traces) / report.ooo_seconds;
  report.ooo_sim_cycles_per_sec =
      static_cast<double>(ooo_cycles) / report.ooo_seconds;

  // Batched OoO: the headline number — the OoO core's per-cycle control
  // (rename, wakeup/select, CDB, retire) amortized across the lanes.
  config.sim_batch_lanes = -1;
  {
    core::trace_campaign batched(config, key);
    (void)batched.produce(0);
    const auto batched_start = std::chrono::steady_clock::now();
    batched.run([](core::trace_record&&) {});
    report.ooo_sim_batched_seconds = seconds_since(batched_start);
    report.ooo_sim_batched_traces_per_sec =
        static_cast<double>(report.traces) / report.ooo_sim_batched_seconds;
  }
  config.sim_batch_lanes = 0;

  // Reference scan scheduler on the identical campaign: the denominator
  // of the speedup ratio above.  Bit-identical traces are a tested
  // invariant (ctest -L ooo_equiv), so only the clock differs.
  config.uarch.ooo.scheduler = sim::ooo_scheduler::reference;
  core::trace_campaign ooo_ref_campaign(config, key);
  (void)ooo_ref_campaign.produce(0);
  const auto ooo_ref_start = std::chrono::steady_clock::now();
  ooo_ref_campaign.run([](core::trace_record&&) {});
  report.ooo_reference_seconds = seconds_since(ooo_ref_start);
  report.ooo_reference_traces_per_sec =
      static_cast<double>(report.traces) / report.ooo_reference_seconds;

  // Speculative OoO: fast scheduler again, bimodal front end on.  The
  // campaign detects the speculating config and runs per-trace (the
  // batch core rejects speculation), so this measures the full
  // subsystem cost on the production acquisition path.
  config.uarch = sim::cortex_a7_ooo_spec(
      sim::speculation_config{.predictor = sim::predictor_kind::bimodal});
  core::trace_campaign ooo_spec_campaign(config, key);
  (void)ooo_spec_campaign.produce(0);
  const auto ooo_spec_start = std::chrono::steady_clock::now();
  ooo_spec_campaign.run([](core::trace_record&&) {});
  report.ooo_spec_seconds = seconds_since(ooo_spec_start);
  report.ooo_spec_traces_per_sec =
      static_cast<double>(report.traces) / report.ooo_spec_seconds;

  // Accumulator throughput, measured on traces of the campaign's length.
  const std::size_t samples = report.samples_per_trace;
  const std::size_t reps = args.get_size("accumulate_reps", 20'000);
  stats::partitioned_cpa cpa(samples);
  report.cpa_accumulate_ns_per_sample = accumulate_ns_per_sample(
      samples, reps, [&](std::size_t r, const std::vector<double>& t) {
        cpa.add_trace(static_cast<std::uint8_t>(r), t);
      });
  stats::tvla_accumulator tvla(samples);
  report.tvla_accumulate_ns_per_sample = accumulate_ns_per_sample(
      samples, reps, [&](std::size_t r, const std::vector<double>& t) {
        if (r % 2 == 0) {
          tvla.add_fixed(t);
        } else {
          tvla.add_random(t);
        }
      });

  // Batched accumulator throughput: one 256-row SoA tile streamed through
  // the dispatched batch kernels, reported as accumulator GB/s (bytes of
  // trace data consumed per second).
  report.batch_kernel = stats::active_kernels().name;
  {
    const std::size_t rows = 256;
    util::xoshiro256 rng(0xba7c);
    std::vector<double> tile(rows * samples);
    for (auto& v : tile) {
      v = 5.0 + rng.next_gaussian();
    }
    std::vector<std::uint8_t> partitions(rows);
    std::vector<unsigned char> classes(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      partitions[r] = static_cast<std::uint8_t>(rng.next_u8());
      classes[r] = r % 2 == 0 ? 1 : 0;
    }
    const std::size_t batch_reps = std::max<std::size_t>(1, reps / rows);
    const double tile_bytes =
        static_cast<double>(rows * samples * sizeof(double));
    stats::partitioned_cpa batch_cpa(samples);
    auto start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < batch_reps; ++r) {
      batch_cpa.add_batch(partitions, tile.data(), samples, rows);
    }
    report.cpa_batch_accumulate_gb_per_sec =
        tile_bytes * static_cast<double>(batch_reps) /
        seconds_since(start) / 1e9;
    stats::tvla_accumulator batch_tvla(samples);
    start = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < batch_reps; ++r) {
      batch_tvla.add_batch(tile.data(), samples, rows, classes);
    }
    report.tvla_batch_accumulate_gb_per_sec =
        tile_bytes * static_cast<double>(batch_reps) /
        seconds_since(start) / 1e9;
  }

  // Trace-store throughput on the campaign's own records: chunked+CRC'd
  // write of the collected traces, then a full mmap replay — pure I/O,
  // no simulation in either loop.
  const std::string store_path = "/tmp/usca_bench_hotpath.trc";
  power::trace_store_descriptor desc;
  desc.seed = config.seed;
  desc.labels = 16;
  {
    const auto write_start = std::chrono::steady_clock::now();
    auto writer = power::trace_store_writer::create(store_path, desc);
    for (std::size_t i = 0; i < archived_samples.size(); ++i) {
      writer.append(archived_labels[i], archived_samples[i]);
    }
    writer.close();
    const double write_seconds = seconds_since(write_start);
    const double payload_mib =
        static_cast<double>(writer.descriptor().record_bytes() *
                            archived_samples.size()) /
        (1024.0 * 1024.0);
    report.store_write_mb_per_sec = payload_mib / write_seconds;
    report.store_bytes_per_trace =
        static_cast<double>(writer.descriptor().record_bytes());
  }
  {
    const auto replay_start = std::chrono::steady_clock::now();
    const power::trace_store_reader reader(store_path);
    std::size_t replayed = 0;
    double checksum = 0.0;
    reader.stream([&](std::size_t, std::span<const double>,
                      std::span<const double> samples_row) {
      checksum += samples_row[0];
      ++replayed;
    });
    const double replay_seconds = seconds_since(replay_start);
    report.store_replay_mb_per_sec =
        static_cast<double>(reader.payload_bytes()) / (1024.0 * 1024.0) /
        replay_seconds;
    report.store_replay_traces_per_sec =
        static_cast<double>(replayed) / replay_seconds;
    if (checksum == 0.0) {
      std::fprintf(stderr, "(degenerate replay checksum)\n");
    }
    // Batched replay INTO an analysis: zero-copy chunks pumped through
    // the CPA pass — the analysis-loaded counterpart of the raw replay
    // number above.
    const auto batched_start = std::chrono::steady_clock::now();
    core::archive_source source(reader);
    core::cpa_sink cpa_pass(0);
    core::pump(source, cpa_pass);
    report.store_replay_batched_traces_per_sec =
        static_cast<double>(cpa_pass.cpa().traces()) /
        seconds_since(batched_start);
  }

  // Fabric merge + salvage scan on the same records: the archived
  // prefix split into 4 contiguous shard stores, concatenated back by
  // core::merge_stores (strict validation + replay-append), then the
  // merged store walked once in salvage mode (the full structural scan
  // every damaged-store open pays).
  {
    const std::size_t n = archived_samples.size();
    const std::size_t per = std::max<std::size_t>(1, (n + 3) / 4);
    std::vector<std::string> shard_paths;
    for (std::size_t s = 0; s * per < n; ++s) {
      const std::string shard =
          store_path + ".shard" + std::to_string(s);
      power::trace_store_descriptor shard_desc = desc;
      shard_desc.first_index = s * per;
      auto writer = power::trace_store_writer::create(shard, shard_desc);
      for (std::size_t i = s * per; i < std::min(n, (s + 1) * per); ++i) {
        writer.append(archived_labels[i], archived_samples[i]);
      }
      writer.close();
      shard_paths.push_back(shard);
    }
    const std::string merged = store_path + ".merged";
    const double payload_mib =
        report.store_bytes_per_trace * static_cast<double>(n) /
        (1024.0 * 1024.0);
    const auto merge_start = std::chrono::steady_clock::now();
    const std::size_t merged_records = core::merge_stores(shard_paths, merged);
    report.fabric_merge_mb_per_sec =
        payload_mib / seconds_since(merge_start);
    if (merged_records != n) {
      std::fprintf(stderr, "(fabric merge lost records?)\n");
    }
    const auto salvage_start = std::chrono::steady_clock::now();
    const power::trace_store_reader salvage_reader(
        merged, power::store_open_mode::salvage);
    report.salvage_scan_mb_per_sec =
        payload_mib / seconds_since(salvage_start);
    if (!salvage_reader.intact()) {
      std::fprintf(stderr, "(salvage scan found damage in a fresh store?)\n");
    }
    for (const std::string& shard : shard_paths) {
      std::remove(shard.c_str());
    }
    std::remove(merged.c_str());
  }
  std::remove(store_path.c_str());
  return report;
}

void write_json(std::FILE* out, const hot_path_report& r) {
  usca::util::json_writer w;
  w.begin_object();
  w.member("bench", "campaign_hot_path");
  w.member("traces", static_cast<std::uint64_t>(r.traces));
  w.member("averaging", r.averaging);
  w.member("threads", r.threads);
  w.member("samples_per_trace", static_cast<std::uint64_t>(r.samples_per_trace));
  w.member_fixed("seconds", r.seconds, 6);
  w.member_fixed("traces_per_sec", r.traces_per_sec, 1);
  w.member_fixed("sim_cycles_per_sec", r.sim_cycles_per_sec, 0);
  w.member("sim_batch_lanes", static_cast<std::uint64_t>(r.sim_batch_lanes));
  w.member_fixed("sim_batched_seconds", r.sim_batched_seconds, 6);
  w.member_fixed("sim_batched_traces_per_sec",
                 r.sim_batched_traces_per_sec, 1);
  w.member("ooo_samples_per_trace",
           static_cast<std::uint64_t>(r.ooo_samples_per_trace));
  w.member_fixed("ooo_seconds", r.ooo_seconds, 6);
  w.member_fixed("ooo_traces_per_sec", r.ooo_traces_per_sec, 1);
  w.member_fixed("ooo_sim_cycles_per_sec", r.ooo_sim_cycles_per_sec, 0);
  w.member_fixed("ooo_sim_batched_seconds", r.ooo_sim_batched_seconds, 6);
  w.member_fixed("ooo_sim_batched_traces_per_sec",
                 r.ooo_sim_batched_traces_per_sec, 1);
  w.member_fixed("ooo_reference_seconds", r.ooo_reference_seconds, 6);
  w.member_fixed("ooo_reference_traces_per_sec",
                 r.ooo_reference_traces_per_sec, 1);
  w.member_fixed("ooo_spec_seconds", r.ooo_spec_seconds, 6);
  w.member_fixed("ooo_spec_traces_per_sec", r.ooo_spec_traces_per_sec, 1);
  w.member_fixed("cpa_accumulate_ns_per_sample",
                 r.cpa_accumulate_ns_per_sample, 3);
  w.member_fixed("tvla_accumulate_ns_per_sample",
                 r.tvla_accumulate_ns_per_sample, 3);
  w.member("batch_kernel", r.batch_kernel);
  w.member_fixed("cpa_batch_accumulate_gb_per_sec",
                 r.cpa_batch_accumulate_gb_per_sec, 2);
  w.member_fixed("tvla_batch_accumulate_gb_per_sec",
                 r.tvla_batch_accumulate_gb_per_sec, 2);
  w.member_fixed("store_write_mb_per_sec", r.store_write_mb_per_sec, 1);
  w.member_fixed("store_replay_mb_per_sec", r.store_replay_mb_per_sec, 1);
  w.member_fixed("store_replay_traces_per_sec",
                 r.store_replay_traces_per_sec, 0);
  w.member_fixed("store_replay_batched_traces_per_sec",
                 r.store_replay_batched_traces_per_sec, 0);
  w.member_fixed("store_bytes_per_trace", r.store_bytes_per_trace, 0);
  w.member_fixed("fabric_merge_mb_per_sec", r.fabric_merge_mb_per_sec, 1);
  w.member_fixed("salvage_scan_mb_per_sec", r.salvage_scan_mb_per_sec, 1);
  w.end_object();
  bench::write_json_report(out, w);
}

int run_json_mode(const std::string& json_arg, int argc, char** argv) {
  // Strip the --json flag; the rest is the usual key=value syntax.
  std::vector<char*> rest;
  rest.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (json_arg != argv[i]) {
      rest.push_back(argv[i]);
    }
  }
  const bench::arg_map args(static_cast<int>(rest.size()), rest.data());
  const hot_path_report report = measure_hot_path(args);
  write_json(stdout, report);
  if (const std::size_t eq = json_arg.find('=');
      eq != std::string::npos && eq + 1 < json_arg.size()) {
    const std::string path = json_arg.substr(eq + 1);
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      write_json(f, report);
      std::fclose(f);
      std::fprintf(stderr, "(report written to %s)\n", path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
  }
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 ||
        std::strncmp(argv[i], "--json=", 7) == 0) {
      return run_json_mode(argv[i], argc, argv);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
