// Experiment P1 — engineering throughput of the simulation stack
// (google-benchmark).  These numbers bound the wall-clock cost of the
// paper-scale campaigns (100k traces).
#include <benchmark/benchmark.h>

#include "asmx/program.h"
#include "crypto/aes_codegen.h"
#include "power/synthesizer.h"
#include "sim/functional_executor.h"
#include "sim/pipeline.h"
#include "stats/cpa.h"
#include "util/bitops.h"
#include "util/rng.h"

using namespace usca;

namespace {

asmx::program make_alu_loop(int instructions) {
  asmx::program_builder b;
  for (int i = 0; i < instructions; ++i) {
    b.emit(isa::ins::add(isa::reg::r1, isa::reg::r2, isa::reg::r3));
    b.emit(isa::ins::eor(isa::reg::r4, isa::reg::r5, isa::reg::r6));
  }
  return b.build();
}

void BM_FunctionalExecutorMips(benchmark::State& state) {
  const asmx::program prog = make_alu_loop(2'000);
  for (auto _ : state) {
    sim::functional_executor exec(prog);
    exec.run();
    benchmark::DoNotOptimize(exec.state().regs[1]);
  }
  state.SetItemsProcessed(state.iterations() * 4'001);
}
BENCHMARK(BM_FunctionalExecutorMips);

void BM_PipelineCyclesPerSecond(benchmark::State& state) {
  const asmx::program prog = make_alu_loop(2'000);
  const bool record = state.range(0) != 0;
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    sim::pipeline pipe(prog, sim::cortex_a7());
    pipe.set_record_activity(record);
    pipe.warm_caches();
    pipe.run();
    cycles += pipe.cycles();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
  state.SetLabel(record ? "activity recorded" : "timing only");
}
BENCHMARK(BM_PipelineCyclesPerSecond)->Arg(0)->Arg(1);

void BM_AesEncryptionOnPipeline(benchmark::State& state) {
  const crypto::aes_program_layout layout = crypto::generate_aes128_program();
  const crypto::aes_round_keys rk = crypto::expand_key(crypto::aes_key{});
  util::xoshiro256 rng(1);
  for (auto _ : state) {
    crypto::aes_block pt;
    for (auto& b : pt) {
      b = rng.next_u8();
    }
    sim::pipeline pipe(layout.prog, sim::cortex_a7());
    crypto::install_aes_inputs(pipe.memory(), layout, rk, pt);
    pipe.warm_caches();
    pipe.run();
    benchmark::DoNotOptimize(pipe.cycles());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("one AES-128 block, activity recorded");
}
BENCHMARK(BM_AesEncryptionOnPipeline);

void BM_TraceSynthesis(benchmark::State& state) {
  const crypto::aes_program_layout layout = crypto::generate_aes128_program();
  const crypto::aes_round_keys rk = crypto::expand_key(crypto::aes_key{});
  sim::pipeline pipe(layout.prog, sim::cortex_a7());
  crypto::install_aes_inputs(pipe.memory(), layout, rk, crypto::aes_block{});
  pipe.warm_caches();
  pipe.run();
  power::trace_synthesizer synth(power::synthesis_config{}, 3);
  const auto end = static_cast<std::uint32_t>(pipe.cycles());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        synth.synthesize_averaged(pipe.activity(), 0, end, 16));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceSynthesis);

void BM_CpaSolvePartitioned(benchmark::State& state) {
  const std::size_t samples = 300;
  stats::partitioned_cpa cpa(samples);
  util::xoshiro256 rng(4);
  std::vector<double> trace(samples);
  for (int t = 0; t < 2'000; ++t) {
    for (auto& v : trace) {
      v = rng.next_gaussian();
    }
    cpa.add_trace(rng.next_u8(), trace);
  }
  const auto model = [](std::size_t g, std::size_t p) {
    return static_cast<double>(
        util::hamming_weight(static_cast<std::uint32_t>(g ^ p)));
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(cpa.solve(model, 256));
  }
  state.SetLabel("2000 traces x 300 samples x 256 guesses");
}
BENCHMARK(BM_CpaSolvePartitioned);

void BM_CpaAddTraceNaive(benchmark::State& state) {
  const std::size_t samples = 300;
  stats::cpa_engine cpa(samples, 256);
  util::xoshiro256 rng(5);
  std::vector<double> trace(samples);
  std::vector<double> hypotheses(256);
  for (auto& h : hypotheses) {
    h = rng.next_double();
  }
  for (auto& v : trace) {
    v = rng.next_gaussian();
  }
  for (auto _ : state) {
    cpa.add_trace(trace, hypotheses);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CpaAddTraceNaive);

} // namespace

BENCHMARK_MAIN();
