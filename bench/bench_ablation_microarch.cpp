// Experiment A1 — ablations of the micro-architectural features the paper
// identifies as leakage-relevant (DESIGN.md section 5).  Each ablation
// re-runs a Table-2 benchmark under a modified micro-architecture and
// shows how the leakage verdicts move — the paper's core thesis
// ("the same ISA-level program leaks differently on different
// micro-architectures") made directly observable.
//
// Characterizations run through the generic campaign engine (reused
// pipelines, sharded trials, thread-count-independent verdicts).
//
// Defaults: traces=8000, threads=hardware. Override with traces=N
// threads=T.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/cpi_explorer.h"
#include "core/leakage_characterizer.h"

using namespace usca;

namespace {

const core::characterization_benchmark& benchmark_named(const char* needle) {
  static const std::vector<core::characterization_benchmark> all =
      core::table2_benchmarks();
  for (const auto& b : all) {
    if (b.name.find(needle) != std::string::npos) {
      return b;
    }
  }
  std::abort();
}

void compare_verdicts(const core::benchmark_report& base,
                      const core::benchmark_report& ablated,
                      const char* base_name, const char* ablated_name) {
  std::printf("  %-12s %-15s %-12s %-12s\n", "model", "component", base_name,
              ablated_name);
  for (std::size_t i = 0; i < base.verdicts.size(); ++i) {
    const auto& a = base.verdicts[i];
    const auto& b = ablated.verdicts[i];
    const bool moved = a.detected != b.detected;
    std::printf("  %-12s %-15s %-12s %-12s%s\n", a.label.c_str(),
                std::string(core::table2_column_name(a.column)).c_str(),
                a.detected ? "RED" : "black", b.detected ? "RED" : "black",
                moved ? "   <== moved" : "");
  }
  std::printf("\n");
}

} // namespace

int main(int argc, char** argv) {
  const bench::arg_map args(argc, argv);
  core::characterizer_options opts;
  opts.traces = args.get_size("traces", 8'000);
  opts.averaging = 16;
  opts.threads = static_cast<unsigned>(args.get_size("threads", 0));

  const power::synthesis_config power_config;
  const core::leakage_characterizer baseline(sim::cortex_a7(), power_config);

  std::printf("== A1: micro-architectural ablations ==\n\n");

  // ------------------------------------------------------------------
  std::printf("--- ablation 1: dual-issue vs scalar (T2.3 add/add-imm) ---\n");
  std::printf("    dual-issuing routes the pair through separate buses and\n"
              "    write-back lanes; a scalar core combines their values.\n");
  {
    const core::leakage_characterizer scalar(sim::cortex_a7_scalar(),
                                             power_config);
    const auto base = baseline.characterize(benchmark_named("dual"), opts);
    const auto ablated = scalar.characterize(benchmark_named("dual"), opts);
    compare_verdicts(base, ablated, "dual-issue", "scalar");
  }

  // ------------------------------------------------------------------
  std::printf("--- ablation 2: nop implementation (T2.1 mov-nop-mov) ---\n");
  std::printf("    a transparent nop (no zero-driving, no WB reset) removes\n"
              "    the Hamming-weight border leaks; the ALU-latch HD leak\n"
              "    survives either way.\n");
  {
    sim::micro_arch_config transparent_nop = sim::cortex_a7();
    transparent_nop.nop_drives_zero_operands = false;
    transparent_nop.nop_zeroes_wb_bus = false;
    const core::leakage_characterizer ablated_chr(transparent_nop,
                                                  power_config);
    const auto base =
        baseline.characterize(benchmark_named("mov-nop-mov"), opts);
    const auto ablated =
        ablated_chr.characterize(benchmark_named("mov-nop-mov"), opts);
    compare_verdicts(base, ablated, "A7 nop", "transparent");
  }

  // ------------------------------------------------------------------
  std::printf("--- ablation 3: LSU align buffer (T2.7 ldr/ldrb) ---\n");
  {
    sim::micro_arch_config no_align = sim::cortex_a7();
    no_align.has_align_buffer = false;
    const core::leakage_characterizer ablated_chr(no_align, power_config);
    const auto base =
        baseline.characterize(benchmark_named("interleave"), opts);
    const auto ablated =
        ablated_chr.characterize(benchmark_named("interleave"), opts);
    compare_verdicts(base, ablated, "with buffer", "no buffer");
  }

  // ------------------------------------------------------------------
  std::printf("--- ablation 4: issue policy — A7 PLA vs purely structural "
              "---\n");
  {
    sim::micro_arch_config structural = sim::cortex_a7();
    structural.policy = sim::issue_policy::structural;
    const core::cpi_explorer a7(sim::cortex_a7());
    const core::cpi_explorer ideal(structural);
    const auto a7_cell =
        a7.measure_pair(core::probe_class::mov, core::probe_class::ld_st);
    const auto ideal_cell =
        ideal.measure_pair(core::probe_class::mov, core::probe_class::ld_st);
    std::printf("  mov + ld/st pair: A7 PLA CPI %.3f (%s), structural-only "
                "CPI %.3f (%s)\n",
                a7_cell.cpi_hazard_free,
                a7_cell.dual_issued ? "dual" : "single",
                ideal_cell.cpi_hazard_free,
                ideal_cell.dual_issued ? "dual" : "single");
    std::printf("  the pairing policy is a hard-wired design choice with\n"
                "  observable timing and leakage consequences.\n\n");
  }

  // ------------------------------------------------------------------
  std::printf("--- ablation 5: RF read-port load (T2.1) ---\n");
  std::printf("    the paper found no RF leakage and ascribed it to the\n"
              "    short capacitive load of the read ports; raising the\n"
              "    port weight makes the same benchmark light up.\n");
  {
    power::synthesis_config leaky_rf = power_config;
    leaky_rf.weights[sim::component::rf_read_port] = 1.0;
    const core::leakage_characterizer ablated_chr(sim::cortex_a7(),
                                                  leaky_rf);
    const auto base =
        baseline.characterize(benchmark_named("mov-nop-mov"), opts);
    const auto ablated =
        ablated_chr.characterize(benchmark_named("mov-nop-mov"), opts);
    compare_verdicts(base, ablated, "weight 0", "weight 1");
  }

  std::printf("done.\n");
  return 0;
}
