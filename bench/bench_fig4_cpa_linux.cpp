// Experiment F4 — reproduces Figure 4 of the paper: "CPA against AES
// running on Linux, employing the Hamming distance between two byte-long
// stores" in SubBytes.
//
// Environment model: the second core runs a saturated webserver (random-
// walk activity), the scheduler preempts at will, nothing is clock-gated
// — usca::power::os_noise_config.  As in the paper, only 100 traces are
// used, each the average of 16 executions of the same input.
//
// Attack model (micro-architecture aware): the store data of consecutive
// SubBytes strb instructions shares the IS/EX operand bus and the memory
// path, so HD(sbox[pt0 ^ k0], sbox[pt1 ^ k1]) leaks.  The attack recovers
// k0 assuming k1 from the preceding chained attack step (the paper's
// model likewise combines two consecutive stores).
//
// Acquisition runs through core::trace_campaign; the campaign-extension
// loop exploits its prefix property: extension batches cover disjoint
// [first_index, first_index+traces) ranges under the same master seed, so
// growing the campaign never re-simulates (or re-draws) its prefix.
//
// Defaults: traces=100, averaging=16 — the paper's exact campaign size.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/campaign.h"
#include "crypto/aes_codegen.h"
#include "stats/cpa.h"
#include "util/bitops.h"

using namespace usca;

int main(int argc, char** argv) {
  const bench::arg_map args(argc, argv);
  const std::size_t traces = args.get_size("traces", 100);
  const int averaging = static_cast<int>(args.get_size("averaging", 16));
  const std::uint64_t seed = args.get_size("seed", 0xf16'4);
  const unsigned threads =
      static_cast<unsigned>(args.get_size("threads", 0));

  const crypto::aes_key key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                               0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                               0x09, 0xcf, 0x4f, 0x3c};

  core::campaign_config config;
  config.traces = traces;
  config.threads = threads;
  config.seed = seed;
  config.averaging = averaging;
  // Window: the SubBytes phase of round 1 (where the byte stores live).
  config.window = {crypto::mark_ark0_end, crypto::mark_sb1_end};
  config.power.os_noise.enabled = true; // the loaded-Linux environment

  stats::cpa_engine cpa(0, 0);
  bool ready = false;
  const auto sink = [&](core::trace_record&& rec) {
    if (!ready) {
      cpa = stats::cpa_engine(rec.samples.size(), 256);
      ready = true;
    }
    std::vector<double> hypotheses(256);
    const std::uint8_t second =
        crypto::subbytes_hypothesis(rec.plaintext[1], key[1]);
    for (std::size_t g = 0; g < 256; ++g) {
      const std::uint8_t first = crypto::subbytes_hypothesis(
          rec.plaintext[0], static_cast<std::uint8_t>(g));
      hypotheses[g] =
          static_cast<double>(util::hamming_distance(first, second));
    }
    cpa.add_trace(rec.samples, hypotheses);
  };

  // Extends the accumulated campaign with traces [first, first+count).
  const auto add_traces = [&](std::size_t first, std::size_t count) {
    core::campaign_config batch = config;
    batch.first_index = first;
    batch.traces = count;
    core::trace_campaign campaign(batch, key);
    campaign.run(sink);
    return campaign.resolved_threads();
  };

  const bench::stopwatch watch;
  const unsigned used_threads = add_traces(0, traces);
  const double elapsed = watch.seconds();

  std::printf("== Figure 4: CPA on AES under Linux load, model = "
              "HD(two consecutive SubBytes byte stores) ==\n");
  std::printf("   traces=%zu (avg of %d executions each), OS noise "
              "enabled, threads=%u (%.2f s)\n\n",
              traces, averaging, used_threads, elapsed);

  const stats::cpa_result result = cpa.solve();
  const std::vector<double>& correct = result.corr[key[0]];

  std::printf("correlation vs time (correct key), SubBytes window:\n");
  std::printf("cycle  corr\n");
  bench::print_rule(30);
  double max_abs = 0.0;
  for (const double c : correct) {
    max_abs = std::max(max_abs, std::fabs(c));
  }
  const std::size_t stride = std::max<std::size_t>(1, correct.size() / 60);
  for (std::size_t s = 0; s < correct.size(); ++s) {
    const bool peak = std::fabs(correct[s]) > 0.7 * max_abs;
    if (!peak && s % stride != 0) {
      continue;
    }
    std::printf("%5zu  %+.4f%s\n", s, correct[s], peak ? "  <== peak" : "");
  }

  const auto best = result.best();
  const auto wrong = result.best_excluding(key[0]);
  const double z = result.distinguishing_z(key[0]);
  std::printf("\nbest guess 0x%02zx (true 0x%02x)\n", best.guess, key[0]);
  std::printf("|corr| correct %.4f vs best wrong %.4f  (z = %.2f, "
              ">99%% needs 2.33)\n",
              std::fabs(result.peak_of(key[0]).corr), std::fabs(wrong.corr),
              z);

  const bool recovered_at_paper_size = best.guess == key[0];
  std::printf("\nat the paper's campaign size (%zu traces) the correct key "
              "%s rank 0%s\n",
              traces, recovered_at_paper_size ? "holds" : "does NOT hold",
              z > 2.326 ? " and clears the >99% criterion" : "");

  // Grow the campaign until the Fisher-z distinguishability criterion is
  // met (measurements-to-confidence).  Note: at rho ~ 0.02 and n = 100,
  // the paper's own numbers would not clear a Fisher-z 99% test either;
  // see EXPERIMENTS.md for the discussion.
  std::size_t total = traces;
  double z_now = z;
  while (z_now <= 2.326 && total < 6400) {
    add_traces(total, total); // double the campaign
    total *= 2;
    z_now = cpa.solve().distinguishing_z(key[0]);
    std::printf("  extended to %4zu traces: distinguishing z = %.2f\n",
                total, z_now);
  }
  const stats::cpa_result final_result = cpa.solve();
  std::printf("\nfinal: best guess 0x%02zx after %zu traces, z = %.2f\n",
              final_result.best().guess, total, z_now);
  const bool success =
      recovered_at_paper_size && final_result.best().guess == key[0] &&
      z_now > 2.326;
  std::printf("attack %s\n", success ? "SUCCEEDS" : "FAILS");
  return success ? 0 : 1;
}
