// Experiment A2 — TVLA (fixed-vs-random Welch t-test) leakage assessment
// of the generated AES on the simulated core, bare metal vs loaded Linux.
//
// The paper detects leakage with model correlations; TVLA is the standard
// model-free complement: two trace populations (a fixed plaintext vs
// random plaintexts) are compared sample-wise, |t| > 4.5 flags leakage.
// The assessment covers the full first round.
//
// Acquisition runs through core::trace_campaign with a fixed-vs-random
// plaintext policy keyed on the trace index parity; the per-index seeding
// keeps both populations bit-reproducible at any thread count.
//
// Defaults: traces=2000 (1000 fixed + 1000 random), averaging=4,
// threads=hardware.
#include <cstdio>

#include "bench_util.h"
#include "core/campaign.h"
#include "crypto/aes_codegen.h"
#include "stats/ttest.h"

using namespace usca;

namespace {

struct tvla_outcome {
  double max_t = 0.0;
  std::size_t leaking = 0;
  std::size_t samples = 0;
  double elapsed = 0.0;
};

tvla_outcome run_tvla(bool os_noise, std::size_t traces, int averaging,
                      std::uint64_t seed, unsigned threads) {
  const crypto::aes_key key = {0x0f, 0x15, 0x71, 0xc9, 0x47, 0xd9,
                               0xe8, 0x59, 0x0c, 0xb7, 0xad, 0xd6,
                               0xaf, 0x7f, 0x67, 0x98};
  const crypto::aes_block fixed_pt = {0xda, 0x39, 0xa3, 0xee, 0x5e, 0x6b,
                                      0x4b, 0x0d, 0x32, 0x55, 0xbf, 0xef,
                                      0x95, 0x60, 0x18, 0x90};

  core::campaign_config config;
  config.traces = traces;
  config.threads = threads;
  config.seed = seed;
  config.averaging = averaging;
  config.window = {crypto::mark_encrypt_begin, crypto::mark_round1_end};
  config.power.os_noise.enabled = os_noise;
  core::trace_campaign campaign(config, key);
  campaign.set_plaintext_policy(
      [fixed_pt](std::size_t index, util::xoshiro256& rng) {
        if (index % 2 == 0) {
          return fixed_pt;
        }
        crypto::aes_block pt;
        for (auto& b : pt) {
          b = rng.next_u8();
        }
        return pt;
      });

  stats::tvla_accumulator acc(0);
  bool ready = false;
  const bench::stopwatch watch;
  campaign.run([&](core::trace_record&& rec) {
    if (!ready) {
      acc = stats::tvla_accumulator(rec.samples.size());
      ready = true;
    }
    if (rec.index % 2 == 0) {
      acc.add_fixed(rec.samples);
    } else {
      acc.add_random(rec.samples);
    }
  });

  tvla_outcome out;
  out.elapsed = watch.seconds();
  out.max_t = acc.max_abs_t();
  out.leaking = acc.leaking_samples(4.5);
  out.samples = acc.samples();
  return out;
}

} // namespace

int main(int argc, char** argv) {
  const bench::arg_map args(argc, argv);
  const std::size_t traces = args.get_size("traces", 2'000);
  const int averaging = static_cast<int>(args.get_size("averaging", 4));
  const std::uint64_t seed = args.get_size("seed", 0x7e57);
  const unsigned threads =
      static_cast<unsigned>(args.get_size("threads", 0));

  std::printf("== A2: TVLA fixed-vs-random t-test on AES round 1 ==\n");
  std::printf("   traces=%zu (half fixed, half random), threshold |t| > "
              "4.5\n\n",
              traces);

  const tvla_outcome bare = run_tvla(false, traces, averaging, seed, threads);
  std::printf("bare metal : max |t| = %7.2f, leaking samples %zu/%zu "
              "(%.2f s)\n",
              bare.max_t, bare.leaking, bare.samples, bare.elapsed);

  const tvla_outcome linux_env =
      run_tvla(true, traces, averaging, seed, threads);
  std::printf("Linux load : max |t| = %7.2f, leaking samples %zu/%zu "
              "(%.2f s)\n",
              linux_env.max_t, linux_env.leaking, linux_env.samples,
              linux_env.elapsed);

  std::printf("\nexpected shape: both environments fail TVLA decisively "
              "(unprotected AES); the loaded environment attenuates but "
              "does not remove the leakage.\n");
  const bool ok = bare.leaking > 0 && linux_env.leaking > 0 &&
                  bare.max_t >= linux_env.max_t;
  std::printf("%s\n", ok ? "OK" : "UNEXPECTED");
  return ok ? 0 : 1;
}
