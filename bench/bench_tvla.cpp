// Experiment A2 — TVLA (fixed-vs-random Welch t-test) leakage assessment
// of the generated AES on the simulated core, bare metal vs loaded Linux.
//
// The paper detects leakage with model correlations; TVLA is the standard
// model-free complement: two trace populations (a fixed plaintext vs
// random plaintexts) are compared sample-wise, |t| > 4.5 flags leakage.
// The assessment covers the full first round.
//
// Defaults: traces=2000 (1000 fixed + 1000 random), averaging=4.
#include <cstdio>

#include "bench_util.h"
#include "crypto/aes_codegen.h"
#include "power/synthesizer.h"
#include "sim/pipeline.h"
#include "stats/ttest.h"
#include "util/rng.h"

using namespace usca;

namespace {

struct tvla_outcome {
  double max_t = 0.0;
  std::size_t leaking = 0;
  std::size_t samples = 0;
};

tvla_outcome run_tvla(bool os_noise, std::size_t traces, int averaging,
                      std::uint64_t seed) {
  const crypto::aes_program_layout layout = crypto::generate_aes128_program();
  const crypto::aes_key key = {0x0f, 0x15, 0x71, 0xc9, 0x47, 0xd9,
                               0xe8, 0x59, 0x0c, 0xb7, 0xad, 0xd6,
                               0xaf, 0x7f, 0x67, 0x98};
  const crypto::aes_round_keys rk = crypto::expand_key(key);
  const crypto::aes_block fixed_pt = {0xda, 0x39, 0xa3, 0xee, 0x5e, 0x6b,
                                      0x4b, 0x0d, 0x32, 0x55, 0xbf, 0xef,
                                      0x95, 0x60, 0x18, 0x90};

  power::synthesis_config power_config;
  power_config.os_noise.enabled = os_noise;
  power::trace_synthesizer synth(power_config, seed);
  util::xoshiro256 rng(seed ^ 0x55aa55aa);

  stats::tvla_accumulator acc(0);
  bool ready = false;
  for (std::size_t t = 0; t < traces; ++t) {
    const bool fixed = t % 2 == 0;
    crypto::aes_block pt = fixed_pt;
    if (!fixed) {
      for (auto& b : pt) {
        b = rng.next_u8();
      }
    }
    sim::pipeline pipe(layout.prog, sim::cortex_a7());
    crypto::install_aes_inputs(pipe.memory(), layout, rk, pt);
    pipe.warm_caches();
    pipe.run();
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    for (const auto& m : pipe.marks()) {
      if (m.id == crypto::mark_encrypt_begin) {
        begin = m.cycle;
      } else if (m.id == crypto::mark_round1_end) {
        end = m.cycle;
      }
    }
    const power::trace trace = synth.synthesize_averaged(
        pipe.activity(), static_cast<std::uint32_t>(begin),
        static_cast<std::uint32_t>(end), averaging);
    if (!ready) {
      acc = stats::tvla_accumulator(trace.size());
      ready = true;
    }
    if (fixed) {
      acc.add_fixed(trace);
    } else {
      acc.add_random(trace);
    }
  }
  tvla_outcome out;
  out.max_t = acc.max_abs_t();
  out.leaking = acc.leaking_samples(4.5);
  out.samples = acc.samples();
  return out;
}

} // namespace

int main(int argc, char** argv) {
  const bench::arg_map args(argc, argv);
  const std::size_t traces = args.get_size("traces", 2'000);
  const int averaging = static_cast<int>(args.get_size("averaging", 4));
  const std::uint64_t seed = args.get_size("seed", 0x7e57);

  std::printf("== A2: TVLA fixed-vs-random t-test on AES round 1 ==\n");
  std::printf("   traces=%zu (half fixed, half random), threshold |t| > "
              "4.5\n\n",
              traces);

  const tvla_outcome bare = run_tvla(false, traces, averaging, seed);
  std::printf("bare metal : max |t| = %7.2f, leaking samples %zu/%zu\n",
              bare.max_t, bare.leaking, bare.samples);

  const tvla_outcome linux_env = run_tvla(true, traces, averaging, seed);
  std::printf("Linux load : max |t| = %7.2f, leaking samples %zu/%zu\n",
              linux_env.max_t, linux_env.leaking, linux_env.samples);

  std::printf("\nexpected shape: both environments fail TVLA decisively "
              "(unprotected AES); the loaded environment attenuates but "
              "does not remove the leakage.\n");
  const bool ok = bare.leaking > 0 && linux_env.leaking > 0 &&
                  bare.max_t >= linux_env.max_t;
  std::printf("%s\n", ok ? "OK" : "UNEXPECTED");
  return ok ? 0 : 1;
}
