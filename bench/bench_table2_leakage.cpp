// Experiment T2 — reproduces Table 2 of the paper: "Instruction
// micro-benchmark sequences employed to detect the main leakage sources in
// the Cortex-A7, and intermediate expressions employed to predict them".
//
// Seven short instruction sequences run with fresh random inputs per
// trial; per-component hypothesis models are correlated against the
// synthesized power.  RED = statistically sound leakage (>99.5%
// confidence in the component's clock cycle), black = no leakage.
// Entries marked '+' correspond to the paper's dagger: boundary effects
// of the flanking nops.
//
// Acquisition runs through the generic campaign engine (worker-owned
// resettable pipelines, per-index seeding, in-order delivery), so trials
// are sharded over threads with bit-identical verdicts at any count.
//
// Defaults: traces=20000 (paper: 100k), averaging=16, threads=hardware.
// Override with traces=N averaging=M seed=S threads=T.
#include <cstdio>

#include <algorithm>
#include <iterator>
#include <vector>

#include "bench_util.h"
#include "core/leakage_characterizer.h"

using namespace usca;

int main(int argc, char** argv) {
  const bench::arg_map args(argc, argv);
  core::characterizer_options opts;
  opts.traces = args.get_size("traces", 20'000);
  opts.averaging = static_cast<int>(args.get_size("averaging", 16));
  opts.threads = static_cast<unsigned>(args.get_size("threads", 0));
  opts.seed = args.get_size("seed", 0x5ca1ab1e);

  std::printf("== Table 2: leakage sources per micro-benchmark ==\n");
  std::printf("   traces=%zu (avg of %d executions each), detection"
              " confidence 99.5%%\n\n",
              opts.traces, opts.averaging);

  const core::leakage_characterizer characterizer(
      sim::cortex_a7(), power::synthesis_config{});

  int mismatched_models = 0;
  int total_models = 0;
  std::vector<core::characterization_benchmark> benches =
      core::table2_benchmarks();
  std::vector<core::characterization_benchmark> extensions =
      core::extension_benchmarks();
  const std::size_t paper_count = benches.size();
  std::move(extensions.begin(), extensions.end(),
            std::back_inserter(benches));
  std::size_t bench_index = 0;
  for (const auto& bench : benches) {
    if (bench_index++ == paper_count) {
      std::printf("--- extension benchmarks (beyond the paper's Table 2)"
                  " ---\n\n");
    }
    const core::benchmark_report report =
        characterizer.characterize(bench, opts);
    std::printf("%s\n  sequence   : %s\n  dual-issue : %s (expected %s)\n",
                report.name.c_str(), report.sequence_text.c_str(),
                report.observed_dual_issue ? "yes" : "no",
                report.expect_dual_issue ? "yes" : "no");
    std::printf("  %-12s %-15s %-8s %-10s %-10s %s\n", "model", "component",
                "corr", "threshold", "cycle", "verdict");
    for (const auto& v : report.verdicts) {
      ++total_models;
      const bool match = v.expected == v.detected;
      mismatched_models += match ? 0 : 1;
      std::printf("  %-12s %-15s %-8.4f %-10.4f %-10zu %s%s%s\n",
                  v.label.c_str(),
                  std::string(table2_column_name(v.column)).c_str(),
                  v.max_abs_corr, v.threshold, v.peak_sample,
                  v.detected ? "RED" : "black",
                  v.border_effect && v.detected ? "+" : "",
                  match ? "" : "  <-- disagrees with paper");
    }
    std::printf("\n");
  }

  std::printf("result: %d/%d model verdicts match the paper's Table 2\n",
              total_models - mismatched_models, total_models);
  return mismatched_models == 0 ? 0 : 1;
}
