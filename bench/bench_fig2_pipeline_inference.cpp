// Experiment F2 — reproduces the structural deductions behind Figure 2:
// "Alleged ARM Cortex A7 pipeline structure according to the deductions
// possible via CPI analysis" (Section 3.2).
//
// The explorer treats the simulated core as a black box, measures CPI on
// targeted micro-benchmarks, and derives: fetch width, ALU count and
// asymmetry, shifter/multiplier placement, LSU and multiplier pipelining,
// and register-file port counts.  The same method is then applied to a
// scalar ablation of the core to show the deductions track the actual
// micro-architecture.
//
// The explorer's dozens of timing probes reuse one resettable pipeline
// (rebind per probe program) — the same zero-reallocation hot path the
// trace campaigns run on.
#include <cstdio>

#include "bench_util.h"
#include "core/cpi_explorer.h"

using namespace usca;

int main(int argc, char** argv) {
  const bench::arg_map args(argc, argv);
  (void)args;

  std::printf("== Figure 2: pipeline structure deduced via CPI analysis ==\n\n");
  std::printf("--- target: Cortex-A7-like configuration ---\n");
  const core::cpi_explorer explorer(sim::cortex_a7());
  const core::pipeline_inference inferred = explorer.infer_structure();
  std::printf("%s\n", inferred.to_string().c_str());

  const sim::micro_arch_config truth = sim::cortex_a7();
  std::printf("cross-check against the configured micro-architecture:\n");
  const auto check = [](const char* what, bool ok) {
    std::printf("  %-28s %s\n", what, ok ? "MATCH" : "MISMATCH");
    return ok;
  };
  bool all = true;
  all &= check("fetch width", inferred.fetch_width == truth.fetch_width);
  all &= check("ALU count", inferred.num_alus == truth.alu_count);
  all &= check("asymmetric ALUs",
               inferred.shifter_and_mul_on_single_alu ==
                   (truth.alu0_has_shifter && truth.alu0_has_multiplier));
  all &= check("LSU pipelined", inferred.lsu_pipelined == truth.lsu_pipelined);
  all &= check("MUL pipelined", inferred.mul_pipelined == truth.mul_pipelined);
  all &= check("RF read ports",
               inferred.rf_read_ports == truth.rf_read_ports);
  all &= check("RF write ports",
               inferred.rf_write_ports == truth.rf_write_ports);

  std::printf("\n--- ablation: scalar configuration of the same core ---\n");
  const core::cpi_explorer scalar(sim::cortex_a7_scalar());
  std::printf("%s\n", scalar.infer_structure().to_string().c_str());

  std::printf("overall: %s\n",
              all ? "all deductions match the configuration"
                  : "DEDUCTION MISMATCH");
  return all ? 0 : 1;
}
