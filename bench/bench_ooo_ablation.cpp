// Experiment B1 (extension) — in-order vs out-of-order leakage ablation.
//
// The DAC'18 paper characterizes one design point (the in-order
// Cortex-A7); its thesis — leakage is a property of the
// micro-architecture, not the ISA — predicts that the SAME program on an
// ISA-compatible out-of-order core leaks through different structures
// with different attack cost.  This bench quantifies that prediction
// across backends and OoO sizings:
//
//   * CPA measurements-to-disclosure (key byte 0, HW(SubBytes-out) model,
//     Fisher-z > 2.326 criterion) — how many traces until the correct key
//     is distinguishable;
//   * full-key recovery (bytes at rank 0 at the full campaign size);
//   * TVLA fixed-vs-random max |t| — model-free leakage magnitude.
//
// Every campaign runs through core::trace_campaign (parallel, per-index
// seeded, bit-identical at any thread count); the MTD search evaluates
// prefixes of one acquired trace matrix, so it costs no extra simulation.
//
// Defaults: max_traces=1200, tvla_traces=800, averaging=4.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/campaign.h"
#include "crypto/aes_codegen.h"
#include "stats/attack_metrics.h"
#include "stats/cpa.h"
#include "stats/ttest.h"
#include "util/bitops.h"

using namespace usca;

namespace {

struct ablation_cell {
  const char* name;
  sim::backend_kind backend;
  sim::ooo_config ooo; ///< ignored for the in-order backend
};

sim::micro_arch_config arch_of(const ablation_cell& cell) {
  if (cell.backend == sim::backend_kind::inorder) {
    return sim::cortex_a7();
  }
  return sim::cortex_a7_ooo(cell.ooo);
}

struct cell_result {
  std::size_t mtd = 0;
  int full_key_bytes = 0;
  std::uint64_t window_cycles = 0;
  double tvla_max_t = 0.0;
  std::size_t tvla_leaking = 0;
};

cell_result run_cell(const ablation_cell& cell, std::size_t max_traces,
                     std::size_t tvla_traces, int averaging,
                     unsigned threads, std::uint64_t seed) {
  const crypto::aes_key key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                               0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                               0x09, 0xcf, 0x4f, 0x3c};
  cell_result out;

  // --- CPA campaign: acquire once, evaluate MTD on prefixes ------------
  core::campaign_config config;
  config.traces = max_traces;
  config.threads = threads;
  config.seed = seed;
  config.averaging = averaging;
  config.backend = cell.backend;
  config.uarch = arch_of(cell);
  core::trace_campaign campaign(config, key);

  std::vector<power::trace> traces;
  std::vector<crypto::aes_block> plaintexts;
  traces.reserve(max_traces);
  plaintexts.reserve(max_traces);
  campaign.run([&](core::trace_record&& rec) {
    out.window_cycles = rec.window_end - rec.window_begin;
    plaintexts.push_back(rec.plaintext);
    traces.push_back(std::move(rec.samples));
  });

  const auto model_at = [&](std::size_t byte_index, std::size_t n) {
    stats::cpa_engine cpa(traces.front().size(), 256);
    std::vector<double> h(256);
    for (std::size_t t = 0; t < std::min(n, traces.size()); ++t) {
      for (std::size_t g = 0; g < 256; ++g) {
        h[g] = util::hamming_weight(crypto::subbytes_hypothesis(
            plaintexts[t][byte_index], static_cast<std::uint8_t>(g)));
      }
      cpa.add_trace(traces[t], h);
    }
    return cpa.solve();
  };

  out.mtd = stats::measurements_to_disclosure(
      [&](std::size_t n) {
        return model_at(0, n).distinguishing_z(key[0]);
      },
      2.326, 50, max_traces);

  for (std::size_t b = 0; b < 16; ++b) {
    if (model_at(b, max_traces).rank_of(key[b]) == 0) {
      ++out.full_key_bytes;
    }
  }

  // --- TVLA campaign: fixed-vs-random keyed on index parity ------------
  const crypto::aes_block fixed_pt = {0xda, 0x39, 0xa3, 0xee, 0x5e, 0x6b,
                                      0x4b, 0x0d, 0x32, 0x55, 0xbf, 0xef,
                                      0x95, 0x60, 0x18, 0x90};
  core::campaign_config tvla_config = config;
  tvla_config.traces = tvla_traces;
  tvla_config.seed = seed ^ 0x71a70000ULL;
  core::trace_campaign tvla_campaign(tvla_config, key);
  tvla_campaign.set_plaintext_policy(
      [fixed_pt](std::size_t index, util::xoshiro256& rng) {
        if (index % 2 == 0) {
          return fixed_pt;
        }
        crypto::aes_block pt;
        for (auto& b : pt) {
          b = rng.next_u8();
        }
        return pt;
      });
  stats::tvla_accumulator acc(0);
  bool ready = false;
  tvla_campaign.run([&](core::trace_record&& rec) {
    if (!ready) {
      acc = stats::tvla_accumulator(rec.samples.size());
      ready = true;
    }
    if (rec.index % 2 == 0) {
      acc.add_fixed(rec.samples);
    } else {
      acc.add_random(rec.samples);
    }
  });
  out.tvla_max_t = acc.max_abs_t();
  out.tvla_leaking = acc.leaking_samples();
  return out;
}

} // namespace

int main(int argc, char** argv) {
  const bench::arg_map args(argc, argv);
  const std::size_t max_traces = args.get_size("max_traces", 1'200);
  const std::size_t tvla_traces = args.get_size("tvla_traces", 800);
  const int averaging = static_cast<int>(args.get_size("averaging", 4));
  const auto threads = static_cast<unsigned>(args.get_size("threads", 0));
  const std::uint64_t seed = args.get_size("seed", 0xab1a7e);

  const ablation_cell cells[] = {
      {"in-order A7 (2-wide)", sim::backend_kind::inorder, {}},
      {"OoO 2-wide ROB32", sim::backend_kind::ooo, sim::ooo_config{}},
      {"OoO 1-wide ROB8", sim::backend_kind::ooo,
       sim::ooo_config{8, 1, 1, 4, 32, 1, 2}},
      {"OoO 4-wide ROB64", sim::backend_kind::ooo,
       sim::ooo_config{64, 4, 4, 32, 128, 4, 8}},
  };

  std::printf("== B1: in-order vs out-of-order leakage ablation ==\n");
  std::printf("   CPA: HW(SubBytes out), key byte 0, round-1 window, "
              "MTD at Fisher-z > 2.326\n");
  std::printf("   campaigns: %zu CPA traces, %zu TVLA traces, averaging "
              "%d\n\n",
              max_traces, tvla_traces, averaging);
  std::printf("%-22s | %7s | %9s | %8s | %10s | %8s\n", "core", "window",
              "CPA MTD", "key/16", "TVLA max|t|", "|t|>4.5");
  std::printf("-----------------------+---------+-----------+----------+"
              "------------+---------\n");

  for (const ablation_cell& cell : cells) {
    const cell_result r = run_cell(cell, max_traces, tvla_traces, averaging,
                                   threads, seed);
    char mtd_text[32];
    if (r.mtd >= max_traces) {
      std::snprintf(mtd_text, sizeof mtd_text, ">%zu", max_traces);
    } else {
      std::snprintf(mtd_text, sizeof mtd_text, "%zu", r.mtd);
    }
    std::printf("%-22s | %7llu | %9s | %5d/16 | %10.1f | %8zu\n", cell.name,
                static_cast<unsigned long long>(r.window_cycles), mtd_text,
                r.full_key_bytes, r.tvla_max_t, r.tvla_leaking);
  }

  std::printf("\nReading: the OoO engine compresses the window (fewer\n"
              "cycles) and moves leakage onto rename/PRF/CDB/retirement\n"
              "structures; the coarse HW model stays viable on every\n"
              "design point — the paper's portability warning, measured.\n");
  return 0;
}
