// Experiment A3 (extension) — measurements-to-disclosure scaling.
//
// Quantifies the practical payoff of micro-architecture-aware modelling
// that the paper argues for: how many traces does the CPA need before the
// correct key byte is distinguishable from the best wrong guess at >99%
// confidence, as a function of (a) the hypothesis model and (b) the
// measurement environment.
//
// Models compared:
//   * HW(SubBytes out)            — the coarse, micro-architecture-unaware
//                                   model of Figure 3;
//   * HD(consecutive SB stores)   — the micro-architecture-aware model of
//                                   Figure 4 (operand-bus/store-path
//                                   sharing of consecutive strb data).
//
// Environments: bare metal, loaded Linux (synthetic model), loaded Linux
// with the *simulated* second core.
//
// Defaults: max_traces=3200, averaging=16.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "crypto/aes_codegen.h"
#include "power/second_core.h"
#include "power/synthesizer.h"
#include "sim/pipeline.h"
#include "stats/attack_metrics.h"
#include "stats/cpa.h"
#include "util/bitops.h"
#include "util/rng.h"

using namespace usca;

namespace {

enum class attack_model { hw_subbytes, hd_stores };
enum class environment { bare, linux_synthetic, linux_simulated };

const char* model_name(attack_model m) {
  return m == attack_model::hw_subbytes ? "HW(SubBytes)" : "HD(SB stores)";
}

const char* env_name(environment e) {
  switch (e) {
  case environment::bare:
    return "bare metal";
  case environment::linux_synthetic:
    return "Linux (synthetic)";
  case environment::linux_simulated:
    return "Linux (simulated core)";
  }
  return "?";
}

/// Pre-collects `max_traces` acquisitions once; sub-campaign z-scores are
/// then evaluated on prefixes, so the MTD search costs no extra simulation.
class campaign {
public:
  campaign(attack_model model, environment env, std::size_t max_traces,
           int averaging, std::uint64_t seed)
      : model_(model) {
    const crypto::aes_program_layout layout =
        crypto::generate_aes128_program();
    key_ = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
            0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
    const crypto::aes_round_keys rk = crypto::expand_key(key_);

    power::synthesis_config config;
    config.os_noise.enabled = env != environment::bare;
    power::trace_synthesizer synth(config, seed);
    if (env == environment::linux_simulated) {
      synth.attach_second_core(std::make_shared<power::second_core_noise>(
          sim::cortex_a7(), config.weights, seed ^ 0xc0de, 8192));
    }
    util::xoshiro256 rng(seed ^ 0xabc);

    for (std::size_t t = 0; t < max_traces; ++t) {
      crypto::aes_block pt;
      for (auto& b : pt) {
        b = rng.next_u8();
      }
      sim::pipeline pipe(layout.prog, sim::cortex_a7());
      crypto::install_aes_inputs(pipe.memory(), layout, rk, pt);
      pipe.warm_caches();
      pipe.run();
      std::uint64_t begin = 0;
      std::uint64_t end = 0;
      for (const auto& m : pipe.marks()) {
        if (m.id == crypto::mark_ark0_end) {
          begin = m.cycle;
        } else if (m.id == crypto::mark_sb1_end) {
          end = m.cycle;
        }
      }
      traces_.push_back(synth.synthesize_averaged(
          pipe.activity(), static_cast<std::uint32_t>(begin),
          static_cast<std::uint32_t>(end), averaging));
      plaintexts_.push_back(pt);
    }
  }

  double z_at(std::size_t n) const {
    stats::cpa_engine cpa(traces_.front().size(), 256);
    std::vector<double> h(256);
    for (std::size_t t = 0; t < std::min(n, traces_.size()); ++t) {
      const crypto::aes_block& pt = plaintexts_[t];
      for (std::size_t g = 0; g < 256; ++g) {
        const std::uint8_t first = crypto::subbytes_hypothesis(
            pt[0], static_cast<std::uint8_t>(g));
        if (model_ == attack_model::hw_subbytes) {
          h[g] = util::hamming_weight(first);
        } else {
          const std::uint8_t second =
              crypto::subbytes_hypothesis(pt[1], key_[1]);
          h[g] = util::hamming_distance(first, second);
        }
      }
      cpa.add_trace(traces_[t], h);
    }
    return cpa.solve().distinguishing_z(key_[0]);
  }

private:
  attack_model model_;
  crypto::aes_key key_{};
  std::vector<power::trace> traces_;
  std::vector<crypto::aes_block> plaintexts_;
};

} // namespace

int main(int argc, char** argv) {
  const bench::arg_map args(argc, argv);
  const std::size_t max_traces = args.get_size("max_traces", 3'200);
  const int averaging = static_cast<int>(args.get_size("averaging", 16));
  const std::uint64_t seed = args.get_size("seed", 0x111d);

  std::printf("== A3: measurements-to-disclosure (traces until the correct "
              "key clears 99%%) ==\n");
  std::printf("   window: round-1 SubBytes; cap %zu traces\n\n", max_traces);
  std::printf("%-16s %-24s %s\n", "model", "environment",
              "traces to >99% disclosure");
  bench::print_rule(66);

  for (const attack_model model :
       {attack_model::hw_subbytes, attack_model::hd_stores}) {
    for (const environment env :
         {environment::bare, environment::linux_synthetic,
          environment::linux_simulated}) {
      const campaign c(model, env, max_traces, averaging, seed);
      const std::size_t mtd = stats::measurements_to_disclosure(
          [&](std::size_t n) { return c.z_at(n); }, 2.326, 25, max_traces);
      if (mtd >= max_traces && c.z_at(max_traces) <= 2.326) {
        std::printf("%-16s %-24s > %zu (not disclosed)\n", model_name(model),
                    env_name(env), max_traces);
      } else {
        std::printf("%-16s %-24s %zu\n", model_name(model), env_name(env),
                    mtd);
      }
    }
  }

  std::printf("\nexpected shape: the micro-architecture-aware HD model in "
              "the SubBytes window\ndiscloses with fewer traces than the "
              "coarse HW model there, and noise multiplies\nthe requirement "
              "in every case.\n");
  return 0;
}
