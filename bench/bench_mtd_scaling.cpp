// Experiment A3 (extension) — measurements-to-disclosure scaling.
//
// Quantifies the practical payoff of micro-architecture-aware modelling
// that the paper argues for: how many traces does the CPA need before the
// correct key byte is distinguishable from the best wrong guess at >99%
// confidence, as a function of (a) the hypothesis model and (b) the
// measurement environment.
//
// Models compared:
//   * HW(SubBytes out)            — the coarse, micro-architecture-unaware
//                                   model of Figure 3;
//   * HD(consecutive SB stores)   — the micro-architecture-aware model of
//                                   Figure 4 (operand-bus/store-path
//                                   sharing of consecutive strb data).
//
// Environments: bare metal, loaded Linux (synthetic model), loaded Linux
// with the *simulated* second core.
//
// Acquisition runs through core::trace_campaign (parallel, per-index
// seeded); the max_traces acquisitions are collected once per cell and
// sub-campaign z-scores evaluated on prefixes, so the MTD search costs no
// extra simulation.
//
// Defaults: max_traces=3200, averaging=16, threads=hardware.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/campaign.h"
#include "crypto/aes_codegen.h"
#include "stats/attack_metrics.h"
#include "stats/cpa.h"
#include "util/bitops.h"

using namespace usca;

namespace {

enum class attack_model { hw_subbytes, hd_stores };
enum class environment { bare, linux_synthetic, linux_simulated };

const char* model_name(attack_model m) {
  return m == attack_model::hw_subbytes ? "HW(SubBytes)" : "HD(SB stores)";
}

const char* env_name(environment e) {
  switch (e) {
  case environment::bare:
    return "bare metal";
  case environment::linux_synthetic:
    return "Linux (synthetic)";
  case environment::linux_simulated:
    return "Linux (simulated core)";
  }
  return "?";
}

/// Collects `max_traces` acquisitions once through the campaign engine;
/// sub-campaign z-scores are then evaluated on prefixes, so the MTD
/// search costs no extra simulation.
class mtd_campaign {
public:
  mtd_campaign(attack_model model, environment env, std::size_t max_traces,
               int averaging, std::uint64_t seed, unsigned threads)
      : model_(model) {
    key_ = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
            0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

    core::campaign_config config;
    config.traces = max_traces;
    config.threads = threads;
    config.seed = seed;
    config.averaging = averaging;
    config.window = {crypto::mark_ark0_end, crypto::mark_sb1_end};
    config.power.os_noise.enabled = env != environment::bare;
    config.simulated_second_core = env == environment::linux_simulated;
    core::trace_campaign campaign(config, key_);

    traces_.reserve(max_traces);
    plaintexts_.reserve(max_traces);
    campaign.run([&](core::trace_record&& rec) {
      plaintexts_.push_back(rec.plaintext);
      traces_.push_back(std::move(rec.samples));
    });
  }

  double z_at(std::size_t n) const {
    stats::cpa_engine cpa(traces_.front().size(), 256);
    std::vector<double> h(256);
    for (std::size_t t = 0; t < std::min(n, traces_.size()); ++t) {
      const crypto::aes_block& pt = plaintexts_[t];
      for (std::size_t g = 0; g < 256; ++g) {
        const std::uint8_t first = crypto::subbytes_hypothesis(
            pt[0], static_cast<std::uint8_t>(g));
        if (model_ == attack_model::hw_subbytes) {
          h[g] = util::hamming_weight(first);
        } else {
          const std::uint8_t second =
              crypto::subbytes_hypothesis(pt[1], key_[1]);
          h[g] = util::hamming_distance(first, second);
        }
      }
      cpa.add_trace(traces_[t], h);
    }
    return cpa.solve().distinguishing_z(key_[0]);
  }

private:
  attack_model model_;
  crypto::aes_key key_{};
  std::vector<power::trace> traces_;
  std::vector<crypto::aes_block> plaintexts_;
};

} // namespace

int main(int argc, char** argv) {
  const bench::arg_map args(argc, argv);
  const std::size_t max_traces = args.get_size("max_traces", 3'200);
  const int averaging = static_cast<int>(args.get_size("averaging", 16));
  const std::uint64_t seed = args.get_size("seed", 0x111d);
  const unsigned threads =
      static_cast<unsigned>(args.get_size("threads", 0));

  std::printf("== A3: measurements-to-disclosure (traces until the correct "
              "key clears 99%%) ==\n");
  std::printf("   window: round-1 SubBytes; cap %zu traces\n\n", max_traces);
  std::printf("%-16s %-24s %s\n", "model", "environment",
              "traces to >99% disclosure");
  bench::print_rule(66);

  for (const attack_model model :
       {attack_model::hw_subbytes, attack_model::hd_stores}) {
    for (const environment env :
         {environment::bare, environment::linux_synthetic,
          environment::linux_simulated}) {
      const mtd_campaign c(model, env, max_traces, averaging, seed, threads);
      const std::size_t mtd = stats::measurements_to_disclosure(
          [&](std::size_t n) { return c.z_at(n); }, 2.326, 25, max_traces);
      if (mtd >= max_traces && c.z_at(max_traces) <= 2.326) {
        std::printf("%-16s %-24s > %zu (not disclosed)\n", model_name(model),
                    env_name(env), max_traces);
      } else {
        std::printf("%-16s %-24s %zu\n", model_name(model), env_name(env),
                    mtd);
      }
    }
  }

  std::printf("\nexpected shape: the micro-architecture-aware HD model in "
              "the SubBytes window\ndiscloses with fewer traces than the "
              "coarse HW model there, and noise multiplies\nthe requirement "
              "in every case.\n");
  return 0;
}
