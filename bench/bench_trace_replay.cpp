// Experiment P2 — simulate-once/analyse-many: live vs replayed CPA.
//
//   ./build/bench_trace_replay [traces=N] [averaging=M] [threads=T]
//                              [seed=S] [f32=0|1] [keep=0|1] [reps=R]
//
// Measures the phases of the archived workflow on the same AES campaign:
// (1) the live path — acquisition straight into the CPA accumulator;
// (2) archiving — the identical campaign streamed into the chunked trace
// store; (3) per-trace replay — the mmap reader feeding add_trace one
// record at a time (the pre-batch architecture); (4) batched replay —
// whole zero-copy chunks pumped through the batched analysis pass and
// the register-blocked accumulate kernels.  Verifies that BOTH replay
// paths produce correlation ranks bit-identical to the live ones, and
// reports archive size per 10k traces plus pure store read/write
// throughput measured without any simulation in the loop.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "bench_util.h"
#include "core/analysis_sinks.h"
#include "core/trace_archive.h"
#include "crypto/aes128.h"
#include "power/trace_store_reader.h"
#include "util/bitops.h"

using namespace usca;

namespace {

const crypto::aes_key bench_key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                                   0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                                   0x09, 0xcf, 0x4f, 0x3c};

double subbytes_hw_model(std::size_t guess, std::size_t pt_byte) {
  return static_cast<double>(util::hamming_weight(
      crypto::subbytes_hypothesis(static_cast<std::uint8_t>(pt_byte),
                                  static_cast<std::uint8_t>(guess))));
}

double mib(std::uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

} // namespace

int main(int argc, char** argv) {
  const bench::arg_map args(argc, argv);
  const std::size_t traces = args.get_size("traces", 5'000);
  const bool f32 = args.get_size("f32", 0) != 0;
  const bool keep = args.get_size("keep", 0) != 0;

  core::campaign_config config;
  config.traces = traces;
  config.threads = static_cast<unsigned>(args.get_size("threads", 1));
  config.seed = args.get_size("seed", 0x9e9);
  config.averaging = static_cast<int>(args.get_size("averaging", 8));
  config.window = {crypto::mark_encrypt_begin, crypto::mark_round1_end};

  core::archive_options store;
  store.scalar = f32 ? power::trace_scalar::f32 : power::trace_scalar::f64;
  const std::string path = "/tmp/usca_bench_replay.trc";
  const std::string copy_path = "/tmp/usca_bench_replay_copy.trc";
  std::remove(path.c_str());

  std::printf("== live vs replayed CPA, %zu traces (averaging %d, "
              "threads %u, %s samples) ==\n\n",
              traces, config.averaging, config.threads,
              f32 ? "f32" : "f64");

  // ---- (1) live: simulate straight into the CPA accumulator ----------
  core::trace_campaign campaign(config, bench_key);
  (void)campaign.produce(0); // warm-up outside the timed region
  core::cpa_sink live(0);
  const bench::stopwatch live_watch;
  campaign.run(live);
  const double live_seconds = live_watch.seconds();
  const stats::cpa_result live_result =
      live.cpa().solve(subbytes_hw_model, 256);

  // ---- (2) archive: the same campaign into the trace store -----------
  const bench::stopwatch archive_watch;
  core::archive_aes_campaign(config, bench_key, path, store);
  const double archive_seconds = archive_watch.seconds();

  // ---- (3) per-trace replay: one add_trace per record (PR4 path) -----
  // The reader is constructed (mmap + full CRC validation) and warmed
  // outside both timed replay regions, so the per-trace vs batched
  // comparison charges each phase only for its own accumulation work;
  // each phase repeats `reps` times (fresh accumulator per repetition)
  // so the sub-10ms analyses time stably.
  const std::size_t reps =
      std::max<std::size_t>(1, args.get_size("reps", 4));
  const power::trace_store_reader reader(path);
  reader.stream([](std::size_t, std::span<const double>,
                   std::span<const double>) {});
  std::optional<stats::partitioned_cpa> per_trace_cpa;
  const bench::stopwatch per_trace_watch;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    per_trace_cpa.emplace(reader.samples());
    reader.stream([&per_trace_cpa](std::size_t,
                                   std::span<const double> labels,
                                   std::span<const double> samples) {
      per_trace_cpa->add_trace(static_cast<std::uint8_t>(labels[0]),
                               samples);
    });
  }
  const double per_trace_seconds =
      per_trace_watch.seconds() / static_cast<double>(reps);
  const stats::cpa_result per_trace_result =
      per_trace_cpa->solve(subbytes_hw_model, 256);

  // ---- (4) batched replay: zero-copy chunks into the batch kernels ---
  std::optional<core::cpa_sink> replayed;
  const bench::stopwatch replay_watch;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    replayed.emplace(0);
    core::archive_source source(reader);
    core::pump(source, *replayed);
  }
  const double replay_seconds =
      replay_watch.seconds() / static_cast<double>(reps);
  const stats::cpa_result replay_result =
      replayed->cpa().solve(subbytes_hw_model, 256);

  // Rank identity check (f64 stores are bit-exact; f32 quantizes).
  bool identical = true;
  for (std::size_t g = 0; g < 256 && identical; ++g) {
    identical = live_result.rank_of(g) == replay_result.rank_of(g) &&
                live_result.rank_of(g) == per_trace_result.rank_of(g);
  }

  // ---- pure store I/O: no simulation in the loop ---------------------
  power::trace_store_descriptor copy_desc = reader.descriptor();
  const bench::stopwatch write_watch;
  {
    auto writer = power::trace_store_writer::create(copy_path, copy_desc);
    reader.stream([&writer](std::size_t, std::span<const double> labels,
                            std::span<const double> samples) {
      writer.append(labels, samples);
    });
    writer.close();
  }
  const double write_seconds = write_watch.seconds();
  std::remove(copy_path.c_str());

  const double payload_mib = mib(reader.payload_bytes());
  const double per_trace = static_cast<double>(reader.payload_bytes()) /
                           static_cast<double>(traces);

  std::printf("  phase              seconds   traces/s\n");
  bench::print_rule(52);
  std::printf("  live CPA           %7.2f   %8.0f\n", live_seconds,
              static_cast<double>(traces) / live_seconds);
  std::printf("  archive            %7.2f   %8.0f   (simulate + write)\n",
              archive_seconds,
              static_cast<double>(traces) / archive_seconds);
  std::printf("  replay per-trace   %7.2f   %8.0f   (%.0fx live)\n",
              per_trace_seconds,
              static_cast<double>(traces) / per_trace_seconds,
              live_seconds / per_trace_seconds);
  std::printf("  replay batched     %7.2f   %8.0f   (%.0fx live, "
              "%.2fx per-trace)\n",
              replay_seconds,
              static_cast<double>(traces) / replay_seconds,
              live_seconds / replay_seconds,
              per_trace_seconds / replay_seconds);
  std::printf("\n  archive: %zu traces x %zu samples = %.1f MiB "
              "(%.1f MiB per 10k traces)\n",
              reader.traces(), reader.samples(), payload_mib,
              per_trace * 10'000.0 / (1024.0 * 1024.0));
  std::printf("  store write %.0f MiB/s, store read (mmap replay) "
              "%.0f MiB/s\n",
              payload_mib / write_seconds, payload_mib / replay_seconds);
  std::printf("\n  replayed CPA ranks %s the live ranks%s\n",
              identical ? "are BIT-IDENTICAL to" : "DIFFER from",
              f32 ? " (f32 store: quantized, small differences expected)"
                  : "");
  std::printf("  recovered key byte: live 0x%02zx, replay 0x%02zx "
              "(true 0x%02x)\n",
              live_result.best().guess, replay_result.best().guess,
              bench_key[0]);

  if (keep) {
    std::printf("  archive kept at %s\n", path.c_str());
  } else {
    std::remove(path.c_str());
  }
  return (identical || f32) ? 0 : 1;
}
