// Shared helpers for the experiment harnesses: a small key=value command
// line parser (every bench runs standalone with sensible defaults),
// wall-clock timing, ASCII table rendering, and machine-readable report
// emission (JSON documents are built with util/json_writer.h — benches
// must not hand-roll escaping or comma placement).
#ifndef USCA_BENCH_BENCH_UTIL_H
#define USCA_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "util/json_writer.h"

namespace usca::bench {

/// Parses "key=value" arguments; unknown keys abort with a usage hint.
class arg_map {
public:
  arg_map(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "usage: %s [key=value]...\n", argv[0]);
        std::exit(2);
      }
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }

  std::size_t get_size(const std::string& key, std::size_t fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    // stoull alone is too lenient: it wraps negatives and ignores
    // trailing garbage, so "traces=-1" would become ~1.8e19.
    try {
      std::size_t consumed = 0;
      const unsigned long long value = std::stoull(it->second, &consumed);
      if (consumed != it->second.size() ||
          it->second.find('-') != std::string::npos) {
        die(key, it->second, "a non-negative integer");
      }
      return static_cast<std::size_t>(value);
    } catch (const std::exception&) {
      die(key, it->second, "a non-negative integer");
    }
  }

  double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    try {
      std::size_t consumed = 0;
      const double value = std::stod(it->second, &consumed);
      if (consumed != it->second.size()) {
        die(key, it->second, "a number");
      }
      return value;
    } catch (const std::exception&) {
      die(key, it->second, "a number");
    }
  }

private:
  [[noreturn]] static void die(const std::string& key,
                               const std::string& value,
                               const char* expected) {
    std::fprintf(stderr, "invalid value '%s' for %s= (expected %s)\n",
                 value.c_str(), key.c_str(), expected);
    std::exit(2);
  }

  std::map<std::string, std::string> values_;
};

/// Wall-clock stopwatch for reporting campaign acquisition cost.
class stopwatch {
public:
  stopwatch() : started_(std::chrono::steady_clock::now()) {}

  /// Seconds elapsed since construction.
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         started_)
        .count();
  }

private:
  std::chrono::steady_clock::time_point started_;
};

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

/// Writes a finished json_writer document to `out` with JSON-lines
/// framing — the one way bench reports reach stdout and report files.
inline void write_json_report(std::FILE* out, const util::json_writer& w) {
  const std::string text = w.line();
  std::fwrite(text.data(), 1, text.size(), out);
}

} // namespace usca::bench

#endif // USCA_BENCH_BENCH_UTIL_H
