// Shared helpers for the experiment harnesses: a small key=value command
// line parser (every bench runs standalone with sensible defaults) and
// ASCII table rendering.
#ifndef USCA_BENCH_BENCH_UTIL_H
#define USCA_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

namespace usca::bench {

/// Parses "key=value" arguments; unknown keys abort with a usage hint.
class arg_map {
public:
  arg_map(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const std::size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "usage: %s [key=value]...\n", argv[0]);
        std::exit(2);
      }
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }

  std::size_t get_size(const std::string& key, std::size_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end()
               ? fallback
               : static_cast<std::size_t>(std::stoull(it->second));
  }

  double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

private:
  std::map<std::string, std::string> values_;
};

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) {
    std::putchar('-');
  }
  std::putchar('\n');
}

} // namespace usca::bench

#endif // USCA_BENCH_BENCH_UTIL_H
