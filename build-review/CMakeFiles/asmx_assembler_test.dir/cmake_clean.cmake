file(REMOVE_RECURSE
  "CMakeFiles/asmx_assembler_test.dir/tests/asmx/assembler_test.cpp.o"
  "CMakeFiles/asmx_assembler_test.dir/tests/asmx/assembler_test.cpp.o.d"
  "asmx_assembler_test"
  "asmx_assembler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asmx_assembler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
