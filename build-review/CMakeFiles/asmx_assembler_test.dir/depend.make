# Empty dependencies file for asmx_assembler_test.
# This may be replaced when dependencies are built.
