# Empty dependencies file for asmx_program_test.
# This may be replaced when dependencies are built.
