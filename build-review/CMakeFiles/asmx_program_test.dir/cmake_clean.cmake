file(REMOVE_RECURSE
  "CMakeFiles/asmx_program_test.dir/tests/asmx/program_test.cpp.o"
  "CMakeFiles/asmx_program_test.dir/tests/asmx/program_test.cpp.o.d"
  "asmx_program_test"
  "asmx_program_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asmx_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
