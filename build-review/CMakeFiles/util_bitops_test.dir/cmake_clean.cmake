file(REMOVE_RECURSE
  "CMakeFiles/util_bitops_test.dir/tests/util/bitops_test.cpp.o"
  "CMakeFiles/util_bitops_test.dir/tests/util/bitops_test.cpp.o.d"
  "util_bitops_test"
  "util_bitops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_bitops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
