# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for power_second_core_test.
