# Empty dependencies file for power_second_core_test.
# This may be replaced when dependencies are built.
