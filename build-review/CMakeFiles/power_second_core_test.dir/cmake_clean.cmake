file(REMOVE_RECURSE
  "CMakeFiles/power_second_core_test.dir/tests/power/second_core_test.cpp.o"
  "CMakeFiles/power_second_core_test.dir/tests/power/second_core_test.cpp.o.d"
  "power_second_core_test"
  "power_second_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_second_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
