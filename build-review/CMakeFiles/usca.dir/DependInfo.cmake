
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asmx/assembler.cpp" "CMakeFiles/usca.dir/src/asmx/assembler.cpp.o" "gcc" "CMakeFiles/usca.dir/src/asmx/assembler.cpp.o.d"
  "/root/repo/src/asmx/lexer.cpp" "CMakeFiles/usca.dir/src/asmx/lexer.cpp.o" "gcc" "CMakeFiles/usca.dir/src/asmx/lexer.cpp.o.d"
  "/root/repo/src/asmx/program.cpp" "CMakeFiles/usca.dir/src/asmx/program.cpp.o" "gcc" "CMakeFiles/usca.dir/src/asmx/program.cpp.o.d"
  "/root/repo/src/core/acquisition.cpp" "CMakeFiles/usca.dir/src/core/acquisition.cpp.o" "gcc" "CMakeFiles/usca.dir/src/core/acquisition.cpp.o.d"
  "/root/repo/src/core/campaign.cpp" "CMakeFiles/usca.dir/src/core/campaign.cpp.o" "gcc" "CMakeFiles/usca.dir/src/core/campaign.cpp.o.d"
  "/root/repo/src/core/cpi_explorer.cpp" "CMakeFiles/usca.dir/src/core/cpi_explorer.cpp.o" "gcc" "CMakeFiles/usca.dir/src/core/cpi_explorer.cpp.o.d"
  "/root/repo/src/core/leakage_aware_scheduler.cpp" "CMakeFiles/usca.dir/src/core/leakage_aware_scheduler.cpp.o" "gcc" "CMakeFiles/usca.dir/src/core/leakage_aware_scheduler.cpp.o.d"
  "/root/repo/src/core/leakage_characterizer.cpp" "CMakeFiles/usca.dir/src/core/leakage_characterizer.cpp.o" "gcc" "CMakeFiles/usca.dir/src/core/leakage_characterizer.cpp.o.d"
  "/root/repo/src/core/leakage_scanner.cpp" "CMakeFiles/usca.dir/src/core/leakage_scanner.cpp.o" "gcc" "CMakeFiles/usca.dir/src/core/leakage_scanner.cpp.o.d"
  "/root/repo/src/core/table2_benchmarks.cpp" "CMakeFiles/usca.dir/src/core/table2_benchmarks.cpp.o" "gcc" "CMakeFiles/usca.dir/src/core/table2_benchmarks.cpp.o.d"
  "/root/repo/src/core/trace_archive.cpp" "CMakeFiles/usca.dir/src/core/trace_archive.cpp.o" "gcc" "CMakeFiles/usca.dir/src/core/trace_archive.cpp.o.d"
  "/root/repo/src/crypto/aes128.cpp" "CMakeFiles/usca.dir/src/crypto/aes128.cpp.o" "gcc" "CMakeFiles/usca.dir/src/crypto/aes128.cpp.o.d"
  "/root/repo/src/crypto/aes_codegen.cpp" "CMakeFiles/usca.dir/src/crypto/aes_codegen.cpp.o" "gcc" "CMakeFiles/usca.dir/src/crypto/aes_codegen.cpp.o.d"
  "/root/repo/src/isa/condition.cpp" "CMakeFiles/usca.dir/src/isa/condition.cpp.o" "gcc" "CMakeFiles/usca.dir/src/isa/condition.cpp.o.d"
  "/root/repo/src/isa/disasm.cpp" "CMakeFiles/usca.dir/src/isa/disasm.cpp.o" "gcc" "CMakeFiles/usca.dir/src/isa/disasm.cpp.o.d"
  "/root/repo/src/isa/encoding.cpp" "CMakeFiles/usca.dir/src/isa/encoding.cpp.o" "gcc" "CMakeFiles/usca.dir/src/isa/encoding.cpp.o.d"
  "/root/repo/src/isa/instruction.cpp" "CMakeFiles/usca.dir/src/isa/instruction.cpp.o" "gcc" "CMakeFiles/usca.dir/src/isa/instruction.cpp.o.d"
  "/root/repo/src/isa/registers.cpp" "CMakeFiles/usca.dir/src/isa/registers.cpp.o" "gcc" "CMakeFiles/usca.dir/src/isa/registers.cpp.o.d"
  "/root/repo/src/mem/cache.cpp" "CMakeFiles/usca.dir/src/mem/cache.cpp.o" "gcc" "CMakeFiles/usca.dir/src/mem/cache.cpp.o.d"
  "/root/repo/src/mem/memory.cpp" "CMakeFiles/usca.dir/src/mem/memory.cpp.o" "gcc" "CMakeFiles/usca.dir/src/mem/memory.cpp.o.d"
  "/root/repo/src/power/noise.cpp" "CMakeFiles/usca.dir/src/power/noise.cpp.o" "gcc" "CMakeFiles/usca.dir/src/power/noise.cpp.o.d"
  "/root/repo/src/power/second_core.cpp" "CMakeFiles/usca.dir/src/power/second_core.cpp.o" "gcc" "CMakeFiles/usca.dir/src/power/second_core.cpp.o.d"
  "/root/repo/src/power/synthesizer.cpp" "CMakeFiles/usca.dir/src/power/synthesizer.cpp.o" "gcc" "CMakeFiles/usca.dir/src/power/synthesizer.cpp.o.d"
  "/root/repo/src/power/trace.cpp" "CMakeFiles/usca.dir/src/power/trace.cpp.o" "gcc" "CMakeFiles/usca.dir/src/power/trace.cpp.o.d"
  "/root/repo/src/power/trace_io.cpp" "CMakeFiles/usca.dir/src/power/trace_io.cpp.o" "gcc" "CMakeFiles/usca.dir/src/power/trace_io.cpp.o.d"
  "/root/repo/src/power/trace_store_reader.cpp" "CMakeFiles/usca.dir/src/power/trace_store_reader.cpp.o" "gcc" "CMakeFiles/usca.dir/src/power/trace_store_reader.cpp.o.d"
  "/root/repo/src/sim/alu.cpp" "CMakeFiles/usca.dir/src/sim/alu.cpp.o" "gcc" "CMakeFiles/usca.dir/src/sim/alu.cpp.o.d"
  "/root/repo/src/sim/backend.cpp" "CMakeFiles/usca.dir/src/sim/backend.cpp.o" "gcc" "CMakeFiles/usca.dir/src/sim/backend.cpp.o.d"
  "/root/repo/src/sim/functional_executor.cpp" "CMakeFiles/usca.dir/src/sim/functional_executor.cpp.o" "gcc" "CMakeFiles/usca.dir/src/sim/functional_executor.cpp.o.d"
  "/root/repo/src/sim/micro_arch_config.cpp" "CMakeFiles/usca.dir/src/sim/micro_arch_config.cpp.o" "gcc" "CMakeFiles/usca.dir/src/sim/micro_arch_config.cpp.o.d"
  "/root/repo/src/sim/ooo/ooo_core.cpp" "CMakeFiles/usca.dir/src/sim/ooo/ooo_core.cpp.o" "gcc" "CMakeFiles/usca.dir/src/sim/ooo/ooo_core.cpp.o.d"
  "/root/repo/src/sim/pipeline.cpp" "CMakeFiles/usca.dir/src/sim/pipeline.cpp.o" "gcc" "CMakeFiles/usca.dir/src/sim/pipeline.cpp.o.d"
  "/root/repo/src/sim/program_image.cpp" "CMakeFiles/usca.dir/src/sim/program_image.cpp.o" "gcc" "CMakeFiles/usca.dir/src/sim/program_image.cpp.o.d"
  "/root/repo/src/sim/uarch_activity.cpp" "CMakeFiles/usca.dir/src/sim/uarch_activity.cpp.o" "gcc" "CMakeFiles/usca.dir/src/sim/uarch_activity.cpp.o.d"
  "/root/repo/src/stats/attack_metrics.cpp" "CMakeFiles/usca.dir/src/stats/attack_metrics.cpp.o" "gcc" "CMakeFiles/usca.dir/src/stats/attack_metrics.cpp.o.d"
  "/root/repo/src/stats/batch_kernels.cpp" "CMakeFiles/usca.dir/src/stats/batch_kernels.cpp.o" "gcc" "CMakeFiles/usca.dir/src/stats/batch_kernels.cpp.o.d"
  "/root/repo/src/stats/cpa.cpp" "CMakeFiles/usca.dir/src/stats/cpa.cpp.o" "gcc" "CMakeFiles/usca.dir/src/stats/cpa.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "CMakeFiles/usca.dir/src/stats/descriptive.cpp.o" "gcc" "CMakeFiles/usca.dir/src/stats/descriptive.cpp.o.d"
  "/root/repo/src/stats/pearson.cpp" "CMakeFiles/usca.dir/src/stats/pearson.cpp.o" "gcc" "CMakeFiles/usca.dir/src/stats/pearson.cpp.o.d"
  "/root/repo/src/stats/ttest.cpp" "CMakeFiles/usca.dir/src/stats/ttest.cpp.o" "gcc" "CMakeFiles/usca.dir/src/stats/ttest.cpp.o.d"
  "/root/repo/src/util/bitops.cpp" "CMakeFiles/usca.dir/src/util/bitops.cpp.o" "gcc" "CMakeFiles/usca.dir/src/util/bitops.cpp.o.d"
  "/root/repo/src/util/crc32.cpp" "CMakeFiles/usca.dir/src/util/crc32.cpp.o" "gcc" "CMakeFiles/usca.dir/src/util/crc32.cpp.o.d"
  "/root/repo/src/util/error.cpp" "CMakeFiles/usca.dir/src/util/error.cpp.o" "gcc" "CMakeFiles/usca.dir/src/util/error.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/usca.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/usca.dir/src/util/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
