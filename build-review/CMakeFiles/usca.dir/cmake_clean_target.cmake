file(REMOVE_RECURSE
  "libusca.a"
)
