# Empty dependencies file for usca.
# This may be replaced when dependencies are built.
