file(REMOVE_RECURSE
  "CMakeFiles/core_trace_archive_test.dir/tests/core/trace_archive_test.cpp.o"
  "CMakeFiles/core_trace_archive_test.dir/tests/core/trace_archive_test.cpp.o.d"
  "core_trace_archive_test"
  "core_trace_archive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_trace_archive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
