# Empty dependencies file for sim_alu_test.
# This may be replaced when dependencies are built.
