file(REMOVE_RECURSE
  "CMakeFiles/sim_alu_test.dir/tests/sim/alu_test.cpp.o"
  "CMakeFiles/sim_alu_test.dir/tests/sim/alu_test.cpp.o.d"
  "sim_alu_test"
  "sim_alu_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_alu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
