# Empty compiler generated dependencies file for sim_pipeline_reset_test.
# This may be replaced when dependencies are built.
