file(REMOVE_RECURSE
  "CMakeFiles/sim_pipeline_reset_test.dir/tests/sim/pipeline_reset_test.cpp.o"
  "CMakeFiles/sim_pipeline_reset_test.dir/tests/sim/pipeline_reset_test.cpp.o.d"
  "sim_pipeline_reset_test"
  "sim_pipeline_reset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_pipeline_reset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
