file(REMOVE_RECURSE
  "CMakeFiles/bench_mtd_scaling.dir/bench/bench_mtd_scaling.cpp.o"
  "CMakeFiles/bench_mtd_scaling.dir/bench/bench_mtd_scaling.cpp.o.d"
  "bench_mtd_scaling"
  "bench_mtd_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mtd_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
