# Empty dependencies file for bench_mtd_scaling.
# This may be replaced when dependencies are built.
