# Empty dependencies file for sim_ooo_activity_golden_test.
# This may be replaced when dependencies are built.
