file(REMOVE_RECURSE
  "CMakeFiles/core_window_pass_test.dir/tests/core/window_pass_test.cpp.o"
  "CMakeFiles/core_window_pass_test.dir/tests/core/window_pass_test.cpp.o.d"
  "core_window_pass_test"
  "core_window_pass_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_window_pass_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
