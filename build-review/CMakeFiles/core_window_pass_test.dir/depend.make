# Empty dependencies file for core_window_pass_test.
# This may be replaced when dependencies are built.
