file(REMOVE_RECURSE
  "CMakeFiles/stats_ttest_test.dir/tests/stats/ttest_test.cpp.o"
  "CMakeFiles/stats_ttest_test.dir/tests/stats/ttest_test.cpp.o.d"
  "stats_ttest_test"
  "stats_ttest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_ttest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
