file(REMOVE_RECURSE
  "CMakeFiles/mem_cache_test.dir/tests/mem/cache_test.cpp.o"
  "CMakeFiles/mem_cache_test.dir/tests/mem/cache_test.cpp.o.d"
  "mem_cache_test"
  "mem_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
