file(REMOVE_RECURSE
  "CMakeFiles/core_ooo_campaign_test.dir/tests/core/ooo_campaign_test.cpp.o"
  "CMakeFiles/core_ooo_campaign_test.dir/tests/core/ooo_campaign_test.cpp.o.d"
  "core_ooo_campaign_test"
  "core_ooo_campaign_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ooo_campaign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
