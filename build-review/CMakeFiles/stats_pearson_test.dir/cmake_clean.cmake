file(REMOVE_RECURSE
  "CMakeFiles/stats_pearson_test.dir/tests/stats/pearson_test.cpp.o"
  "CMakeFiles/stats_pearson_test.dir/tests/stats/pearson_test.cpp.o.d"
  "stats_pearson_test"
  "stats_pearson_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_pearson_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
