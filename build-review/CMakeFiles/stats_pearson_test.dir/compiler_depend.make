# Empty compiler generated dependencies file for stats_pearson_test.
# This may be replaced when dependencies are built.
