file(REMOVE_RECURSE
  "CMakeFiles/stats_blocked_accumulator_test.dir/tests/stats/blocked_accumulator_test.cpp.o"
  "CMakeFiles/stats_blocked_accumulator_test.dir/tests/stats/blocked_accumulator_test.cpp.o.d"
  "stats_blocked_accumulator_test"
  "stats_blocked_accumulator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_blocked_accumulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
