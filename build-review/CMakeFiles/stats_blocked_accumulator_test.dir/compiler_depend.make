# Empty compiler generated dependencies file for stats_blocked_accumulator_test.
# This may be replaced when dependencies are built.
