# Empty dependencies file for bench_fig3_cpa_baremetal.
# This may be replaced when dependencies are built.
