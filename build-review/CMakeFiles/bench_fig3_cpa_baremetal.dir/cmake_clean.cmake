file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_cpa_baremetal.dir/bench/bench_fig3_cpa_baremetal.cpp.o"
  "CMakeFiles/bench_fig3_cpa_baremetal.dir/bench/bench_fig3_cpa_baremetal.cpp.o.d"
  "bench_fig3_cpa_baremetal"
  "bench_fig3_cpa_baremetal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_cpa_baremetal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
