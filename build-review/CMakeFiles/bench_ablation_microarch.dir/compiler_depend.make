# Empty compiler generated dependencies file for bench_ablation_microarch.
# This may be replaced when dependencies are built.
