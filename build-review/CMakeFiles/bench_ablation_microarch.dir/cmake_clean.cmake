file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_microarch.dir/bench/bench_ablation_microarch.cpp.o"
  "CMakeFiles/bench_ablation_microarch.dir/bench/bench_ablation_microarch.cpp.o.d"
  "bench_ablation_microarch"
  "bench_ablation_microarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_microarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
