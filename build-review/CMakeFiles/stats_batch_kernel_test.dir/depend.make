# Empty dependencies file for stats_batch_kernel_test.
# This may be replaced when dependencies are built.
