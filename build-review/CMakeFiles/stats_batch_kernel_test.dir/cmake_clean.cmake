file(REMOVE_RECURSE
  "CMakeFiles/stats_batch_kernel_test.dir/tests/stats/batch_kernel_test.cpp.o"
  "CMakeFiles/stats_batch_kernel_test.dir/tests/stats/batch_kernel_test.cpp.o.d"
  "stats_batch_kernel_test"
  "stats_batch_kernel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_batch_kernel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
