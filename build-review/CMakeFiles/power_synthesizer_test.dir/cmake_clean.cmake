file(REMOVE_RECURSE
  "CMakeFiles/power_synthesizer_test.dir/tests/power/synthesizer_test.cpp.o"
  "CMakeFiles/power_synthesizer_test.dir/tests/power/synthesizer_test.cpp.o.d"
  "power_synthesizer_test"
  "power_synthesizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_synthesizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
