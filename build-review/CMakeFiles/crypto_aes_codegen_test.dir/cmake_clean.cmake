file(REMOVE_RECURSE
  "CMakeFiles/crypto_aes_codegen_test.dir/tests/crypto/aes_codegen_test.cpp.o"
  "CMakeFiles/crypto_aes_codegen_test.dir/tests/crypto/aes_codegen_test.cpp.o.d"
  "crypto_aes_codegen_test"
  "crypto_aes_codegen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_aes_codegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
