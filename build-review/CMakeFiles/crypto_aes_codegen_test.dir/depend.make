# Empty dependencies file for crypto_aes_codegen_test.
# This may be replaced when dependencies are built.
