# Empty dependencies file for stats_attack_metrics_test.
# This may be replaced when dependencies are built.
