file(REMOVE_RECURSE
  "CMakeFiles/stats_attack_metrics_test.dir/tests/stats/attack_metrics_test.cpp.o"
  "CMakeFiles/stats_attack_metrics_test.dir/tests/stats/attack_metrics_test.cpp.o.d"
  "stats_attack_metrics_test"
  "stats_attack_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_attack_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
