file(REMOVE_RECURSE
  "CMakeFiles/power_activity_index_test.dir/tests/power/activity_index_test.cpp.o"
  "CMakeFiles/power_activity_index_test.dir/tests/power/activity_index_test.cpp.o.d"
  "power_activity_index_test"
  "power_activity_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_activity_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
