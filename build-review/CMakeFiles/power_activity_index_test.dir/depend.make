# Empty dependencies file for power_activity_index_test.
# This may be replaced when dependencies are built.
