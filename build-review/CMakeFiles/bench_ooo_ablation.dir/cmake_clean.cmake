file(REMOVE_RECURSE
  "CMakeFiles/bench_ooo_ablation.dir/bench/bench_ooo_ablation.cpp.o"
  "CMakeFiles/bench_ooo_ablation.dir/bench/bench_ooo_ablation.cpp.o.d"
  "bench_ooo_ablation"
  "bench_ooo_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ooo_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
