# Empty dependencies file for bench_ooo_ablation.
# This may be replaced when dependencies are built.
