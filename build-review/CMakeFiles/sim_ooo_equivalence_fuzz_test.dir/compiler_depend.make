# Empty compiler generated dependencies file for sim_ooo_equivalence_fuzz_test.
# This may be replaced when dependencies are built.
