file(REMOVE_RECURSE
  "CMakeFiles/sim_ooo_equivalence_fuzz_test.dir/tests/sim/ooo_equivalence_fuzz_test.cpp.o"
  "CMakeFiles/sim_ooo_equivalence_fuzz_test.dir/tests/sim/ooo_equivalence_fuzz_test.cpp.o.d"
  "sim_ooo_equivalence_fuzz_test"
  "sim_ooo_equivalence_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_ooo_equivalence_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
