# Empty dependencies file for sim_pipeline_activity_test.
# This may be replaced when dependencies are built.
