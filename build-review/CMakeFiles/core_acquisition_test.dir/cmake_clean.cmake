file(REMOVE_RECURSE
  "CMakeFiles/core_acquisition_test.dir/tests/core/acquisition_test.cpp.o"
  "CMakeFiles/core_acquisition_test.dir/tests/core/acquisition_test.cpp.o.d"
  "core_acquisition_test"
  "core_acquisition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_acquisition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
