# Empty compiler generated dependencies file for core_characterizer_replay_test.
# This may be replaced when dependencies are built.
