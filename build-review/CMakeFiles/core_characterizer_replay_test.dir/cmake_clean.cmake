file(REMOVE_RECURSE
  "CMakeFiles/core_characterizer_replay_test.dir/tests/core/characterizer_replay_test.cpp.o"
  "CMakeFiles/core_characterizer_replay_test.dir/tests/core/characterizer_replay_test.cpp.o.d"
  "core_characterizer_replay_test"
  "core_characterizer_replay_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_characterizer_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
