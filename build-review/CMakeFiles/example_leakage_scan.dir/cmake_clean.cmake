file(REMOVE_RECURSE
  "CMakeFiles/example_leakage_scan.dir/examples/leakage_scan.cpp.o"
  "CMakeFiles/example_leakage_scan.dir/examples/leakage_scan.cpp.o.d"
  "example_leakage_scan"
  "example_leakage_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_leakage_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
