# Empty dependencies file for example_leakage_scan.
# This may be replaced when dependencies are built.
