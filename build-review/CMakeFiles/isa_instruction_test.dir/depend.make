# Empty dependencies file for isa_instruction_test.
# This may be replaced when dependencies are built.
