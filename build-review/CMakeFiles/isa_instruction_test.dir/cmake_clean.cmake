file(REMOVE_RECURSE
  "CMakeFiles/isa_instruction_test.dir/tests/isa/instruction_test.cpp.o"
  "CMakeFiles/isa_instruction_test.dir/tests/isa/instruction_test.cpp.o.d"
  "isa_instruction_test"
  "isa_instruction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_instruction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
