# Empty dependencies file for sim_ooo_backend_test.
# This may be replaced when dependencies are built.
