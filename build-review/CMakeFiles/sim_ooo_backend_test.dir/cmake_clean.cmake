file(REMOVE_RECURSE
  "CMakeFiles/sim_ooo_backend_test.dir/tests/sim/ooo_backend_test.cpp.o"
  "CMakeFiles/sim_ooo_backend_test.dir/tests/sim/ooo_backend_test.cpp.o.d"
  "sim_ooo_backend_test"
  "sim_ooo_backend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_ooo_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
