file(REMOVE_RECURSE
  "CMakeFiles/isa_encoding_test.dir/tests/isa/encoding_test.cpp.o"
  "CMakeFiles/isa_encoding_test.dir/tests/isa/encoding_test.cpp.o.d"
  "isa_encoding_test"
  "isa_encoding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_encoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
