# Empty compiler generated dependencies file for sim_ooo_differential_test.
# This may be replaced when dependencies are built.
