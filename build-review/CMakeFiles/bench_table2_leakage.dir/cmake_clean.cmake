file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_leakage.dir/bench/bench_table2_leakage.cpp.o"
  "CMakeFiles/bench_table2_leakage.dir/bench/bench_table2_leakage.cpp.o.d"
  "bench_table2_leakage"
  "bench_table2_leakage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_leakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
