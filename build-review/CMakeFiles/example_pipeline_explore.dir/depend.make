# Empty dependencies file for example_pipeline_explore.
# This may be replaced when dependencies are built.
