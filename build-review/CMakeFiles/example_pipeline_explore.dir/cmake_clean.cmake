file(REMOVE_RECURSE
  "CMakeFiles/example_pipeline_explore.dir/examples/pipeline_explore.cpp.o"
  "CMakeFiles/example_pipeline_explore.dir/examples/pipeline_explore.cpp.o.d"
  "example_pipeline_explore"
  "example_pipeline_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pipeline_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
