file(REMOVE_RECURSE
  "CMakeFiles/core_scanner_dynamic_consistency_test.dir/tests/core/scanner_dynamic_consistency_test.cpp.o"
  "CMakeFiles/core_scanner_dynamic_consistency_test.dir/tests/core/scanner_dynamic_consistency_test.cpp.o.d"
  "core_scanner_dynamic_consistency_test"
  "core_scanner_dynamic_consistency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_scanner_dynamic_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
