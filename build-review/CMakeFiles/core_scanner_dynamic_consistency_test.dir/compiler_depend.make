# Empty compiler generated dependencies file for core_scanner_dynamic_consistency_test.
# This may be replaced when dependencies are built.
