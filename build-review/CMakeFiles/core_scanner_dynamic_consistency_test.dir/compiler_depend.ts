# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for core_scanner_dynamic_consistency_test.
