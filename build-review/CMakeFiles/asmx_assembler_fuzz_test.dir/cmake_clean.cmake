file(REMOVE_RECURSE
  "CMakeFiles/asmx_assembler_fuzz_test.dir/tests/asmx/assembler_fuzz_test.cpp.o"
  "CMakeFiles/asmx_assembler_fuzz_test.dir/tests/asmx/assembler_fuzz_test.cpp.o.d"
  "asmx_assembler_fuzz_test"
  "asmx_assembler_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asmx_assembler_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
