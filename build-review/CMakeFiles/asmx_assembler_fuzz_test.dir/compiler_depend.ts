# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for asmx_assembler_fuzz_test.
