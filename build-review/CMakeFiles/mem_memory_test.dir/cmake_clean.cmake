file(REMOVE_RECURSE
  "CMakeFiles/mem_memory_test.dir/tests/mem/memory_test.cpp.o"
  "CMakeFiles/mem_memory_test.dir/tests/mem/memory_test.cpp.o.d"
  "mem_memory_test"
  "mem_memory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
