file(REMOVE_RECURSE
  "CMakeFiles/power_trace_test.dir/tests/power/trace_test.cpp.o"
  "CMakeFiles/power_trace_test.dir/tests/power/trace_test.cpp.o.d"
  "power_trace_test"
  "power_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
