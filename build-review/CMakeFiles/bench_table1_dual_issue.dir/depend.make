# Empty dependencies file for bench_table1_dual_issue.
# This may be replaced when dependencies are built.
