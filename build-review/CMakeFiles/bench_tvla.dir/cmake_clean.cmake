file(REMOVE_RECURSE
  "CMakeFiles/bench_tvla.dir/bench/bench_tvla.cpp.o"
  "CMakeFiles/bench_tvla.dir/bench/bench_tvla.cpp.o.d"
  "bench_tvla"
  "bench_tvla.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tvla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
