# Empty compiler generated dependencies file for bench_tvla.
# This may be replaced when dependencies are built.
