# Empty dependencies file for sim_functional_executor_test.
# This may be replaced when dependencies are built.
