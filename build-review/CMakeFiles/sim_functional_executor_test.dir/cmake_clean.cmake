file(REMOVE_RECURSE
  "CMakeFiles/sim_functional_executor_test.dir/tests/sim/functional_executor_test.cpp.o"
  "CMakeFiles/sim_functional_executor_test.dir/tests/sim/functional_executor_test.cpp.o.d"
  "sim_functional_executor_test"
  "sim_functional_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_functional_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
