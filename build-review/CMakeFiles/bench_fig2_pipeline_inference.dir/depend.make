# Empty dependencies file for bench_fig2_pipeline_inference.
# This may be replaced when dependencies are built.
