file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_pipeline_inference.dir/bench/bench_fig2_pipeline_inference.cpp.o"
  "CMakeFiles/bench_fig2_pipeline_inference.dir/bench/bench_fig2_pipeline_inference.cpp.o.d"
  "bench_fig2_pipeline_inference"
  "bench_fig2_pipeline_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_pipeline_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
