# Empty compiler generated dependencies file for power_leakage_weights_test.
# This may be replaced when dependencies are built.
