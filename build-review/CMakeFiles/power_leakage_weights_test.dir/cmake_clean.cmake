file(REMOVE_RECURSE
  "CMakeFiles/power_leakage_weights_test.dir/tests/power/leakage_weights_test.cpp.o"
  "CMakeFiles/power_leakage_weights_test.dir/tests/power/leakage_weights_test.cpp.o.d"
  "power_leakage_weights_test"
  "power_leakage_weights_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_leakage_weights_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
