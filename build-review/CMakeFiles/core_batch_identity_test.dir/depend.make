# Empty dependencies file for core_batch_identity_test.
# This may be replaced when dependencies are built.
