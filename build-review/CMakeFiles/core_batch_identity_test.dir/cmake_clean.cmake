file(REMOVE_RECURSE
  "CMakeFiles/core_batch_identity_test.dir/tests/core/batch_identity_test.cpp.o"
  "CMakeFiles/core_batch_identity_test.dir/tests/core/batch_identity_test.cpp.o.d"
  "core_batch_identity_test"
  "core_batch_identity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_batch_identity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
