# Empty compiler generated dependencies file for isa_condition_test.
# This may be replaced when dependencies are built.
