file(REMOVE_RECURSE
  "CMakeFiles/isa_condition_test.dir/tests/isa/condition_test.cpp.o"
  "CMakeFiles/isa_condition_test.dir/tests/isa/condition_test.cpp.o.d"
  "isa_condition_test"
  "isa_condition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_condition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
