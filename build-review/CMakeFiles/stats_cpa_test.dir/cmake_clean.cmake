file(REMOVE_RECURSE
  "CMakeFiles/stats_cpa_test.dir/tests/stats/cpa_test.cpp.o"
  "CMakeFiles/stats_cpa_test.dir/tests/stats/cpa_test.cpp.o.d"
  "stats_cpa_test"
  "stats_cpa_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_cpa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
