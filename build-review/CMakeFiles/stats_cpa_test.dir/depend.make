# Empty dependencies file for stats_cpa_test.
# This may be replaced when dependencies are built.
