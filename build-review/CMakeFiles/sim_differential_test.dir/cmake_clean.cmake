file(REMOVE_RECURSE
  "CMakeFiles/sim_differential_test.dir/tests/sim/differential_test.cpp.o"
  "CMakeFiles/sim_differential_test.dir/tests/sim/differential_test.cpp.o.d"
  "sim_differential_test"
  "sim_differential_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
