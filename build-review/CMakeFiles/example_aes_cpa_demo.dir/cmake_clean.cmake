file(REMOVE_RECURSE
  "CMakeFiles/example_aes_cpa_demo.dir/examples/aes_cpa_demo.cpp.o"
  "CMakeFiles/example_aes_cpa_demo.dir/examples/aes_cpa_demo.cpp.o.d"
  "example_aes_cpa_demo"
  "example_aes_cpa_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_aes_cpa_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
