# Empty dependencies file for example_aes_cpa_demo.
# This may be replaced when dependencies are built.
