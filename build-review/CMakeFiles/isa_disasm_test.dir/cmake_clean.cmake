file(REMOVE_RECURSE
  "CMakeFiles/isa_disasm_test.dir/tests/isa/disasm_test.cpp.o"
  "CMakeFiles/isa_disasm_test.dir/tests/isa/disasm_test.cpp.o.d"
  "isa_disasm_test"
  "isa_disasm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_disasm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
