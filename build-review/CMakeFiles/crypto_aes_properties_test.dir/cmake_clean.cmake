file(REMOVE_RECURSE
  "CMakeFiles/crypto_aes_properties_test.dir/tests/crypto/aes_properties_test.cpp.o"
  "CMakeFiles/crypto_aes_properties_test.dir/tests/crypto/aes_properties_test.cpp.o.d"
  "crypto_aes_properties_test"
  "crypto_aes_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_aes_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
