# Empty compiler generated dependencies file for asmx_lexer_test.
# This may be replaced when dependencies are built.
