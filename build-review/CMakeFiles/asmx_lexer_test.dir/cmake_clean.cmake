file(REMOVE_RECURSE
  "CMakeFiles/asmx_lexer_test.dir/tests/asmx/lexer_test.cpp.o"
  "CMakeFiles/asmx_lexer_test.dir/tests/asmx/lexer_test.cpp.o.d"
  "asmx_lexer_test"
  "asmx_lexer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asmx_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
