# Empty compiler generated dependencies file for example_harden_gadget.
# This may be replaced when dependencies are built.
