file(REMOVE_RECURSE
  "CMakeFiles/example_harden_gadget.dir/examples/harden_gadget.cpp.o"
  "CMakeFiles/example_harden_gadget.dir/examples/harden_gadget.cpp.o.d"
  "example_harden_gadget"
  "example_harden_gadget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_harden_gadget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
