# Empty dependencies file for power_trace_store_test.
# This may be replaced when dependencies are built.
