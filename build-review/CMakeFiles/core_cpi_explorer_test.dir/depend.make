# Empty dependencies file for core_cpi_explorer_test.
# This may be replaced when dependencies are built.
