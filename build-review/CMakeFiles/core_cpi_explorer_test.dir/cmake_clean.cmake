file(REMOVE_RECURSE
  "CMakeFiles/core_cpi_explorer_test.dir/tests/core/cpi_explorer_test.cpp.o"
  "CMakeFiles/core_cpi_explorer_test.dir/tests/core/cpi_explorer_test.cpp.o.d"
  "core_cpi_explorer_test"
  "core_cpi_explorer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_cpi_explorer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
