# Empty compiler generated dependencies file for core_scanner_test.
# This may be replaced when dependencies are built.
