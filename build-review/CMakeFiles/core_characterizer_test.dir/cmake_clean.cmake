file(REMOVE_RECURSE
  "CMakeFiles/core_characterizer_test.dir/tests/core/characterizer_test.cpp.o"
  "CMakeFiles/core_characterizer_test.dir/tests/core/characterizer_test.cpp.o.d"
  "core_characterizer_test"
  "core_characterizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_characterizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
