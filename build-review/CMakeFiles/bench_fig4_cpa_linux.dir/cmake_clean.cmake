file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_cpa_linux.dir/bench/bench_fig4_cpa_linux.cpp.o"
  "CMakeFiles/bench_fig4_cpa_linux.dir/bench/bench_fig4_cpa_linux.cpp.o.d"
  "bench_fig4_cpa_linux"
  "bench_fig4_cpa_linux.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_cpa_linux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
