# Empty compiler generated dependencies file for bench_fig4_cpa_linux.
# This may be replaced when dependencies are built.
