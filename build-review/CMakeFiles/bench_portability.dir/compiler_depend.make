# Empty compiler generated dependencies file for bench_portability.
# This may be replaced when dependencies are built.
