file(REMOVE_RECURSE
  "CMakeFiles/bench_portability.dir/bench/bench_portability.cpp.o"
  "CMakeFiles/bench_portability.dir/bench/bench_portability.cpp.o.d"
  "bench_portability"
  "bench_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
