// Speculation-as-a-leakage-source probe, the speculation subsystem's
// counterpart of the paper's Section 5 demo:
//
//   ./build/example_spec_probe [--traces=N] [--predictor=bimodal|gshare|static]
//
// Part A — Spectre-PHT gadget under TVLA.  A bounds-checked table walk
// is trained in-bounds, then fed an out-of-bounds index that points at a
// secret byte.  Architecturally the bounds check always wins: the gadget
// body never executes and the secret never reaches a register.  Under a
// real (trainable) predictor the attack iteration mispredicts and the
// wrong path renames the two loads anyway — the second one indexed by
// the *secret byte itself* — so the secret crosses the PRF read ports
// and the load pipes as pure wrong-path activity before the flush
// squashes it.  Fixed-vs-random TVLA over the synthesized traces makes
// the leak visible; the same campaign under the perfect predictor is the
// control (no wrong path, no leak).
//
// Part B — retirement-schedule covert channel.  A transmitter branches
// on each bit of a message; the weakly-not-taken reset state makes every
// 1-bit mispredict.  The mispredicted branch blocks retirement until it
// resolves, so the receiver reads the message back from per-bit cycle
// deltas (and sees the matching ROB retire-port activity thinning) —
// wrong-path execution modulating a shared resource, no architectural
// data flow at all.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <vector>

#include "asmx/program.h"
#include "core/acquisition.h"
#include "isa/instruction.h"
#include "sim/ooo/ooo_core.h"
#include "stats/ttest.h"
#include "util/error.h"

using namespace usca;

namespace {

namespace mk = isa::ins;
using isa::condition;
using isa::reg;

constexpr std::uint16_t mark_gadget_begin = 1;
constexpr std::uint16_t mark_gadget_end = 2;
constexpr std::uint16_t mark_bit_base = 100;
constexpr std::uint16_t mark_message_end = 200;

constexpr std::uint32_t public_bytes = 16; ///< gadget bound
constexpr std::uint32_t secret_bytes = 16;

struct gadget_layout {
  asmx::program prog;
  std::uint32_t array_addr = 0; ///< [0,16) public, [16,32) secret
};

// if (idx < bound) { r5 = array[idx]; r6 = probe[r5]; }
// Registers: r1 array base, r2 probe base, r3 bound, r4 idx.
void emit_gadget_iteration(asmx::program_builder& builder,
                           std::uint32_t idx) {
  builder.emit(mk::mov_imm(reg::r4, idx));
  builder.emit(mk::cmp(reg::r4, reg::r3));
  builder.emit(mk::b(2, condition::ge)); // bounds check: skip body if OOB
  builder.emit(mk::ldrb_reg(reg::r5, reg::r1, reg::r4));
  builder.emit(mk::ldrb_reg(reg::r6, reg::r2, reg::r5)); // secret-indexed
}

gadget_layout build_gadget_program() {
  asmx::program_builder builder;
  gadget_layout layout;
  layout.array_addr = builder.data_block(public_bytes + secret_bytes, 4);
  const std::uint32_t probe_addr = builder.data_block(256, 4);

  builder.load_constant(reg::r1, layout.array_addr);
  builder.load_constant(reg::r2, probe_addr);
  builder.emit(mk::mov_imm(reg::r3, public_bytes));
  builder.pad_nops(4);

  builder.emit(mk::mark(mark_gadget_begin));
  for (std::uint32_t s = 0; s < secret_bytes; ++s) {
    // Two in-bounds iterations train this block's branch not-taken, then
    // the attack iteration aims past the bound at secret byte s.
    emit_gadget_iteration(builder, (s * 7 + 3) % public_bytes);
    emit_gadget_iteration(builder, (s * 5 + 1) % public_bytes);
    emit_gadget_iteration(builder, public_bytes + s);
  }
  builder.emit(mk::mark(mark_gadget_end));
  builder.pad_nops(4);
  layout.prog = builder.build();
  return layout;
}

struct tvla_outcome {
  double max_t = 0.0;
  std::size_t leaking = 0;
  std::size_t samples = 0;
};

tvla_outcome run_gadget_tvla(const gadget_layout& layout,
                             const sim::micro_arch_config& uarch,
                             std::size_t traces, std::uint64_t seed) {
  core::acquisition_config config;
  config.traces = traces;
  config.seed = seed;
  config.averaging = 4;
  config.window = core::campaign_window{mark_gadget_begin, mark_gadget_end};
  config.backend = sim::backend_kind::ooo;
  config.uarch = uarch;

  core::acquisition_campaign campaign(sim::program_image(layout.prog),
                                      config);
  const std::uint32_t secret_addr = layout.array_addr + public_bytes;
  campaign.set_setup([secret_addr, array_addr = layout.array_addr](
                         std::size_t index, util::xoshiro256& rng,
                         sim::backend& core, std::vector<double>&) {
    for (std::uint32_t i = 0; i < public_bytes; ++i) {
      core.memory().write8(array_addr + i,
                           static_cast<std::uint8_t>(0x11 * (i + 1)));
    }
    for (std::uint32_t i = 0; i < secret_bytes; ++i) {
      // Fixed-vs-random keyed on index parity; the rng still draws for
      // fixed trials so both classes share the same stream position.
      const std::uint8_t random_byte = rng.next_u8();
      const std::uint8_t byte =
          index % 2 == 0 ? static_cast<std::uint8_t>(0xa5 ^ (i * 29))
                         : random_byte;
      core.memory().write8(secret_addr + i, byte);
    }
  });

  stats::tvla_accumulator acc(0);
  tvla_outcome out;
  bool ready = false;
  campaign.run([&](core::acquisition_record&& rec) {
    if (!ready) {
      acc = stats::tvla_accumulator(rec.samples.size());
      out.samples = rec.samples.size();
      ready = true;
    }
    if (rec.index % 2 == 0) {
      acc.add_fixed(rec.samples);
    } else {
      acc.add_random(rec.samples);
    }
  });
  out.max_t = acc.max_abs_t();
  out.leaking = acc.leaking_samples();
  return out;
}

// ---------------------------------------------------------------- Part B

asmx::program build_covert_program(std::uint32_t& msg_addr_out) {
  asmx::program_builder builder;
  const std::uint32_t msg_addr = builder.data_block(16, 4);
  msg_addr_out = msg_addr;

  builder.load_constant(reg::r1, msg_addr);
  builder.pad_nops(4);
  for (std::uint32_t bit = 0; bit < 8; ++bit) {
    builder.emit(mk::mark(static_cast<std::uint16_t>(mark_bit_base + bit)));
    builder.emit(mk::ldrb(reg::r4, reg::r1, bit));
    builder.emit(mk::cmp_imm(reg::r4, 0));
    // Taken exactly when the bit is 1; the reset weakly-not-taken counter
    // predicts fall-through, so every 1-bit pays a full mispredict.
    builder.emit(mk::b(2, condition::ne));
    builder.emit(mk::nop());
    builder.emit(mk::nop());
  }
  builder.emit(mk::mark(mark_message_end));
  builder.pad_nops(4);
  return builder.build();
}

void run_covert_channel(const sim::speculation_config& spec) {
  std::uint32_t msg_addr = 0;
  const asmx::program prog = build_covert_program(msg_addr);
  const std::uint8_t message = 0xb2; // 1011 0010, LSB first

  sim::ooo_core core(sim::program_image(prog), sim::cortex_a7_ooo_spec(spec));
  for (std::uint32_t bit = 0; bit < 8; ++bit) {
    core.memory().write8(msg_addr + bit, (message >> bit) & 1);
  }
  core.warm_caches();
  core.run();

  std::uint64_t bit_cycle[9] = {};
  for (const sim::mark_stamp& m : core.marks()) {
    if (m.id >= mark_bit_base && m.id < mark_bit_base + 8) {
      bit_cycle[m.id - mark_bit_base] = m.cycle;
    } else if (m.id == mark_message_end) {
      bit_cycle[8] = m.cycle;
    }
  }

  std::uint64_t deltas[8];
  std::size_t retire_events[8] = {};
  std::uint64_t min_delta = ~0ULL;
  std::uint64_t max_delta = 0;
  for (int bit = 0; bit < 8; ++bit) {
    deltas[bit] = bit_cycle[bit + 1] - bit_cycle[bit];
    min_delta = std::min(min_delta, deltas[bit]);
    max_delta = std::max(max_delta, deltas[bit]);
    for (const sim::activity_event& ev : core.activity()) {
      if (ev.comp == sim::component::rob_retire_port &&
          ev.cycle >= bit_cycle[bit] && ev.cycle < bit_cycle[bit + 1]) {
        ++retire_events[bit];
      }
    }
  }

  const std::uint64_t threshold = (min_delta + max_delta + 1) / 2;
  std::uint8_t decoded = 0;
  std::printf("  bit | sent | cycles | retire-port events | decoded\n");
  for (int bit = 0; bit < 8; ++bit) {
    const int sent = (message >> bit) & 1;
    const int read = deltas[bit] >= threshold ? 1 : 0;
    if (read) {
      decoded |= static_cast<std::uint8_t>(1u << bit);
    }
    std::printf("   %d  |  %d   | %6llu | %18zu | %d%s\n", bit, sent,
                static_cast<unsigned long long>(deltas[bit]),
                retire_events[bit], read, sent == read ? "" : "  <-- ERROR");
  }
  std::printf("  transmitted 0x%02x, decoded 0x%02x (%s); %llu mispredicts "
              "(= number of 1-bits), %llu wrong-path uops renamed\n",
              message, decoded, message == decoded ? "clean" : "CORRUPTED",
              static_cast<unsigned long long>(core.mispredicts()),
              static_cast<unsigned long long>(core.wrong_path_renamed()));
}

} // namespace

int main(int argc, char** argv) {
  std::size_t traces = 600;
  sim::predictor_kind kind = sim::predictor_kind::bimodal;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--traces=", 0) == 0) {
      traces = static_cast<std::size_t>(std::strtoull(argv[i] + 9, nullptr,
                                                      10));
      if (traces < 4) {
        std::fprintf(stderr, "--traces wants at least 4\n");
        return 2;
      }
    } else if (arg.rfind("--predictor=", 0) == 0) {
      const auto parsed = sim::parse_predictor_kind(arg.substr(12));
      if (!parsed || *parsed == sim::predictor_kind::perfect) {
        std::fprintf(stderr,
                     "--predictor wants bimodal|gshare|static (the perfect "
                     "control always runs)\n");
        return 2;
      }
      kind = *parsed;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--traces=N] "
                   "[--predictor=bimodal|gshare|static]\n",
                   argv[0]);
      return 2;
    }
  }

  sim::speculation_config spec;
  spec.predictor = kind;

  const gadget_layout layout = build_gadget_program();
  std::printf("== Part A: Spectre-PHT gadget, fixed-vs-random TVLA "
              "(%zu traces) ==\n\n",
              traces);

  const tvla_outcome leaky =
      run_gadget_tvla(layout, sim::cortex_a7_ooo_spec(spec), traces, 0x57ec);
  sim::speculation_config perfect;
  perfect.predictor = sim::predictor_kind::perfect;
  const tvla_outcome control = run_gadget_tvla(
      layout, sim::cortex_a7_ooo_spec(perfect), traces, 0x57ec);

  std::printf("  %-28s %10s %10s %9s\n", "core", "max |t|", "|t|>4.5",
              "samples");
  std::printf("  %-28s %10.1f %10zu %9zu\n",
              (std::string(sim::predictor_kind_name(kind)) + " predictor")
                  .c_str(),
              leaky.max_t, leaky.leaking, leaky.samples);
  std::printf("  %-28s %10.1f %10zu %9zu\n", "perfect predictor (control)",
              control.max_t, control.leaking, control.samples);
  const bool part_a_ok = leaky.max_t > 4.5 && control.max_t < 4.5;
  std::printf("\n  %s: the secret is never architecturally read past the "
              "bounds check;\n  every bit of leakage above is wrong-path "
              "rename/load activity.\n",
              part_a_ok ? "LEAK CONFIRMED" : "unexpected result");

  std::printf("\n== Part B: retirement-schedule covert channel ==\n\n");
  sim::speculation_config covert_spec = spec;
  // The per-bit block drains in ~8 cycles on its own (the load feeding
  // the branch dominates), so a short resolve latency hides entirely
  // under it; 20 cycles pushes the mispredict stall well clear of the
  // baseline and the channel decodes from raw cycle deltas.
  covert_spec.resolve_latency = 20;
  run_covert_channel(covert_spec);

  return part_a_ok ? 0 : 1;
}
