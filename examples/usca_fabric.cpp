// Fault-tolerant distributed campaign driver over core::campaign_fabric:
//
//   ./build/example_usca_fabric run --out=PATH [--traces=N] [--lease=N]
//        [--workers=N] [--backend=inorder|ooo] [--seed=N]
//        [--deadline-ms=N] [--max-attempts=N] [--dir=PATH]
//        [--inject=LEASE:FAILPOINT_SPEC]... [--keep-shards]
//        [--progress] [--telemetry=PATH]
//   ./build/example_usca_fabric worker --first=N --traces=N --shard=PATH
//        [--backend=inorder|ooo] [--seed=N] [--failpoint=SPEC]
//   ./build/example_usca_fabric verify PATH [--strict]
//   ./build/example_usca_fabric status PATH [--probe]
//
// `run` is the coordinator: it splits the campaign into range leases,
// re-execs this binary as one worker process per lease (each worker
// archives its range with core::archive_acquisition — so a killed and
// re-issued worker resumes its shard instead of starting over), and
// merges the validated shards into --out, a store byte-identical to one
// uninterrupted single-process archive.  The acquisition is the same
// demo AES-128 campaign as example_aes_cpa_demo, so the merged store
// replays there: `example_aes_cpa_demo --replay=OUT`.
//
// --inject=LEASE:SPEC arms a util/failpoint spec (e.g. `3:archive_
// record:crash@500`) in that lease's FIRST worker attempt only — the
// re-issued attempt runs clean and resumes the dead worker's shard.
// That is the kill-at-N-points robustness drill from the fabric tests,
// runnable from the shell.
//
// `verify` is the health checker (machine-readable: one JSON object on
// stdout, exit 0 = healthy): a trace store is opened in salvage mode
// and its damage map printed; a fabric manifest is walked lease by
// lease with every shard probed strict-then-salvage.
//
// `status` is the live campaign monitor: it renders manifest + worker
// heartbeats (`<shard>.hb`, written by every worker every 250 ms) as
// one JSON object WITHOUT touching any shard bytes, so it is safe and
// cheap to run against a mid-campaign directory from another terminal.
// PATH may be the manifest, the --out path (".manifest" is appended),
// or a directory containing exactly one "*.manifest".  Exit 0 = the
// manifest parsed, even when the campaign is still running; --probe
// additionally opens every shard in salvage mode like `verify`.
//
// `--progress` makes the coordinator print a live one-line report
// (traces/s, ETA, worker liveness from heartbeats) to stderr;
// `--telemetry=PATH` appends JSON-lines telemetry snapshots — from the
// coordinator on the progress cadence and from every worker at exit —
// to PATH (workers inherit it via USCA_TELEMETRY_PATH).
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "core/campaign_fabric.h"
#include "core/campaign_telemetry.h"
#include "core/trace_archive.h"
#include "crypto/aes_codegen.h"
#include "power/trace_store_reader.h"
#include "util/error.h"
#include "util/failpoint.h"
#include "util/json_writer.h"
#include "util/telemetry.h"

using namespace usca;

namespace {

// Same campaign as example_aes_cpa_demo — the merged archive replays
// there bit-identically.
const crypto::aes_key demo_key = {0xde, 0xad, 0xbe, 0xef, 0x01, 0x23,
                                  0x45, 0x67, 0x89, 0xab, 0xcd, 0xef,
                                  0x10, 0x32, 0x54, 0x76};

core::acquisition_config demo_config(sim::backend_kind backend,
                                     std::uint64_t seed,
                                     std::size_t first_index,
                                     std::size_t traces) {
  core::acquisition_config config;
  config.first_index = first_index;
  config.traces = traces;
  config.seed = seed;
  config.averaging = 8;
  config.window = core::campaign_window{crypto::mark_encrypt_begin,
                                        crypto::mark_round1_end};
  config.backend = backend;
  config.uarch = backend == sim::backend_kind::ooo ? sim::cortex_a7_ooo()
                                                   : sim::cortex_a7();
  return config;
}

core::acquisition_campaign::setup_fn
demo_setup(const crypto::aes_program_layout& layout,
           const crypto::aes_round_keys& rk) {
  return [&layout, &rk](std::size_t, util::xoshiro256& rng,
                        sim::backend& core, std::vector<double>& labels) {
    crypto::aes_block pt;
    for (auto& b : pt) {
      b = rng.next_u8();
    }
    crypto::install_aes_inputs(core.memory(), layout, rk, pt);
    labels.resize(pt.size());
    for (std::size_t b = 0; b < pt.size(); ++b) {
      labels[b] = static_cast<double>(pt[b]);
    }
  };
}

std::string self_exe(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    return std::string(buf, static_cast<std::size_t>(n));
  }
  return argv0;
}

bool parse_u64(std::string_view arg, std::string_view prefix,
               std::uint64_t& out) {
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  const std::string text(arg.substr(prefix.size()));
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    std::fprintf(stderr, "%.*s wants an integer, got '%s'\n",
                 static_cast<int>(prefix.size()), prefix.data(),
                 text.c_str());
    std::exit(2);
  }
  out = value;
  return true;
}

/// Prints one finished json_writer document to stdout with a trailing
/// newline — every machine-readable subcommand funnels through here.
void print_json(util::json_writer& w) {
  const std::string text = w.str();
  std::fwrite(text.data(), 1, text.size(), stdout);
  std::fputc('\n', stdout);
}

// ------------------------------------------------------------- worker

int run_worker(int argc, char** argv) {
  sim::backend_kind backend = sim::backend_kind::inorder;
  std::uint64_t seed = 42, first = 0, traces = 0;
  std::string shard, failpoint_spec;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--backend=", 0) == 0) {
      const auto kind = sim::parse_backend_kind(arg.substr(10));
      if (!kind) {
        std::fprintf(stderr, "unknown backend '%s'\n", argv[i] + 10);
        return 2;
      }
      backend = *kind;
    } else if (arg.rfind("--shard=", 0) == 0) {
      shard = arg.substr(8);
    } else if (arg.rfind("--failpoint=", 0) == 0) {
      failpoint_spec = arg.substr(12);
    } else if (!parse_u64(arg, "--seed=", seed) &&
               !parse_u64(arg, "--first=", first) &&
               !parse_u64(arg, "--traces=", traces)) {
      std::fprintf(stderr, "worker: unknown option '%s'\n", argv[i]);
      return 2;
    }
  }
  if (shard.empty() || traces == 0) {
    std::fprintf(stderr, "worker: --shard and --traces are required\n");
    return 2;
  }
  try {
    if (!failpoint_spec.empty()) {
      util::failpoint_configure(failpoint_spec);
    }
    // Same site the thread runner fires at worker entry, so a
    // `fabric_worker` rule kills a process worker before it archives
    // anything.
    util::failpoint("fabric_worker");
    const crypto::aes_program_layout layout =
        crypto::generate_aes128_program();
    const crypto::aes_round_keys rk = crypto::expand_key(demo_key);
    const core::acquisition_config config =
        demo_config(backend, seed, static_cast<std::size_t>(first),
                    static_cast<std::size_t>(traces));

    // Heartbeat next to the shard: `produced` is read back from the
    // archive loop's own telemetry counter, no second bookkeeping.  A
    // crash (failpoint or real SIGKILL) leaves the last "running" record
    // behind — `status` reports its age instead of a false "done".
    core::worker_heartbeat hb;
    hb.pid = static_cast<std::uint64_t>(::getpid());
    hb.first_index = first;
    hb.traces = traces;
    const std::size_t produced_id = telem::register_metric(
        "archive.records", "records", "archive", telem::metric_kind::counter);
    core::heartbeat_publisher heartbeat(
        core::heartbeat_path(shard), hb,
        [produced_id]() { return telem::counter_value(produced_id); });

    core::archive_acquisition(sim::program_image(layout.prog), config,
                              demo_setup(layout, rk), shard);
    heartbeat.finish("done");
    core::export_snapshot("worker");
    return 0;
  } catch (const util::usca_error& e) {
    std::fprintf(stderr, "worker (records %llu..%llu): %s\n",
                 static_cast<unsigned long long>(first),
                 static_cast<unsigned long long>(first + traces), e.what());
    core::export_snapshot("worker");
    return 1;
  }
}

// -------------------------------------------------------- coordinator

int run_coordinator(int argc, char** argv) {
  sim::backend_kind backend = sim::backend_kind::inorder;
  std::uint64_t seed = 42, traces = 2'000, lease = 500, workers = 2;
  std::uint64_t deadline_ms = 0, max_attempts = 5;
  std::string out, dir, telemetry_path;
  std::map<std::size_t, std::string> inject;
  bool keep_shards = false;
  bool progress = false;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--backend=", 0) == 0) {
      const auto kind = sim::parse_backend_kind(arg.substr(10));
      if (!kind) {
        std::fprintf(stderr, "unknown backend '%s'\n", argv[i] + 10);
        return 2;
      }
      backend = *kind;
    } else if (arg.rfind("--out=", 0) == 0) {
      out = arg.substr(6);
    } else if (arg.rfind("--dir=", 0) == 0) {
      dir = arg.substr(6);
    } else if (arg.rfind("--inject=", 0) == 0) {
      const std::string_view spec = arg.substr(9);
      const std::size_t colon = spec.find(':');
      if (colon == std::string_view::npos) {
        std::fprintf(stderr,
                     "--inject wants LEASE:FAILPOINT_SPEC, got '%s'\n",
                     argv[i] + 9);
        return 2;
      }
      inject[static_cast<std::size_t>(
          std::strtoull(std::string(spec.substr(0, colon)).c_str(),
                        nullptr, 10))] = std::string(spec.substr(colon + 1));
    } else if (arg == "--keep-shards") {
      keep_shards = true;
    } else if (arg == "--progress") {
      progress = true;
    } else if (arg.rfind("--telemetry=", 0) == 0) {
      telemetry_path = arg.substr(12);
    } else if (!parse_u64(arg, "--seed=", seed) &&
               !parse_u64(arg, "--traces=", traces) &&
               !parse_u64(arg, "--lease=", lease) &&
               !parse_u64(arg, "--workers=", workers) &&
               !parse_u64(arg, "--deadline-ms=", deadline_ms) &&
               !parse_u64(arg, "--max-attempts=", max_attempts)) {
      std::fprintf(stderr, "run: unknown option '%s'\n", argv[i]);
      return 2;
    }
  }
  if (out.empty()) {
    std::fprintf(stderr, "run: --out is required\n");
    return 2;
  }

  core::fabric_config config;
  config.manifest_path = out + ".manifest";
  config.shard_dir = dir.empty() ? out + ".shards" : dir;
  config.traces = static_cast<std::size_t>(traces);
  config.lease_traces = static_cast<std::size_t>(lease);
  config.seed = seed;
  // Must equal what archive_acquisition writes into every shard header.
  config.config_hash = core::salted_config_hash(
      core::acquisition_config_hash(demo_config(backend, seed, 0, 1)), 0);
  config.workers = static_cast<unsigned>(workers);
  config.max_attempts = static_cast<unsigned>(max_attempts);
  config.lease_deadline = std::chrono::milliseconds(deadline_ms);

  if (!telemetry_path.empty()) {
    telem::set_export_path(telemetry_path);
    // Forked workers read the sink from the environment at static init;
    // their exit snapshots land in the same JSON-lines file.
    ::setenv("USCA_TELEMETRY_PATH", telemetry_path.c_str(), 1);
  }

  // Live progress: the fabric's census gives done-lease trace counts;
  // worker heartbeats refine it with mid-lease partial progress and a
  // liveness count (heartbeat younger than 4 heartbeat intervals).
  core::progress_meter meter;
  const bool tty = ::isatty(STDERR_FILENO) == 1;
  if (progress || !telemetry_path.empty()) {
    config.on_progress = [&meter, progress, tty,
                          &telemetry_path](const core::fabric_progress& p) {
      std::size_t produced = p.done_traces;
      std::size_t live = 0;
      for (const core::fabric_lease& l : *p.leases) {
        if (l.state != core::lease_state::leased) {
          continue;
        }
        const auto hb =
            core::read_heartbeat(core::heartbeat_path(l.shard_path));
        if (!hb) {
          continue;
        }
        produced += std::min<std::uint64_t>(hb->produced, l.traces);
        const std::uint64_t now = core::wall_clock_ms();
        if ((hb->state == "starting" || hb->state == "running") &&
            now - hb->wall_ms < 1000) {
          ++live;
        }
      }
      meter.observe(std::min<std::uint64_t>(produced, p.total_traces));
      if (progress) {
        const std::string line = meter.format_line(live);
        if (tty) {
          std::fprintf(stderr, "\r\x1b[K%s%s", line.c_str(),
                       p.finished ? "\n" : "");
        } else {
          std::fprintf(stderr, "%s\n", line.c_str());
        }
        std::fflush(stderr);
      }
      if (!telemetry_path.empty()) {
        core::export_snapshot("coordinator");
      }
    };
  }

  const std::string self = self_exe(argv[0]);
  const std::string backend_name(sim::backend_kind_name(backend));
  core::process_worker_runner runner(
      [&](const core::fabric_lease& l) {
        std::vector<std::string> worker_argv = {
            self,
            "worker",
            "--first=" + std::to_string(l.first_index),
            "--traces=" + std::to_string(l.traces),
            "--shard=" + l.shard_path,
            "--backend=" + backend_name,
            "--seed=" + std::to_string(seed),
        };
        const auto it = inject.find(l.id);
        if (it != inject.end() && l.attempts == 1) {
          // Injected faults hit the first attempt only: the re-issued
          // worker runs clean and resumes the dead one's shard.
          worker_argv.push_back("--failpoint=" + it->second);
        }
        return worker_argv;
      });

  try {
    core::campaign_fabric fabric(config);
    std::printf("fabric: %zu traces in %zu leases of <=%zu, %u workers "
                "(%s backend)\n",
                config.traces, fabric.leases().size(), config.lease_traces,
                config.workers, backend_name.c_str());
    std::size_t inherited = 0;
    for (const core::fabric_lease& l : fabric.leases()) {
      if (l.state == core::lease_state::done) {
        inherited += l.traces;
      }
    }
    meter.start(config.traces, inherited);
    const core::fabric_report report = fabric.run(runner);
    std::printf("fabric: %zu/%zu leases done (%zu already archived, "
                "%zu worker failures, %zu deadline kills, %zu invalid "
                "shards, %zu relaunches)\n",
                report.already_done + report.completed, report.leases,
                report.already_done, report.worker_failures,
                report.deadline_kills, report.invalid_shards,
                report.relaunches);
    const std::size_t merged = fabric.merge(out);
    std::printf("fabric: merged %zu records into '%s' (replay with "
                "example_aes_cpa_demo --replay=%s)\n",
                merged, out.c_str(), out.c_str());
    if (!keep_shards) {
      for (const core::fabric_lease& l : fabric.leases()) {
        ::unlink(l.shard_path.c_str());
        ::unlink(core::heartbeat_path(l.shard_path).c_str());
      }
      ::unlink(config.manifest_path.c_str());
      ::rmdir(config.shard_dir.c_str());
    }
    if (!telemetry_path.empty()) {
      core::export_snapshot("coordinator");
    }
    return 0;
  } catch (const util::usca_error& e) {
    std::fprintf(stderr, "fabric: %s\n", e.what());
    return 1;
  }
}

// -------------------------------------------------------------- verify

void print_store_json(const std::string& path,
                      const power::trace_store_reader& reader) {
  util::json_writer w;
  w.begin_object();
  w.member("kind", "store");
  w.member("path", path);
  w.member("ok", reader.intact());
  w.member("traces", reader.traces());
  w.member("samples", reader.samples());
  w.member("labels", reader.labels());
  w.member("first_index", reader.first_index());
  w.member("next_index", reader.next_index());
  w.member("lost_records", reader.lost_records());
  w.member("chunks", reader.chunk_count());
  w.key("damage");
  w.begin_array();
  for (const power::chunk_damage& d : reader.damage()) {
    w.begin_object();
    w.member("chunk", d.chunk);
    w.member("byte_offset", d.byte_offset);
    w.member("fault", power::store_fault_name(d.fault));
    w.member("bytes_skipped", d.bytes_skipped);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  print_json(w);
}

int verify_store(const std::string& path, bool strict) {
  try {
    const power::trace_store_reader reader(
        path, strict ? power::store_open_mode::strict
                     : power::store_open_mode::salvage);
    print_store_json(path, reader);
    return reader.intact() ? 0 : 1;
  } catch (const util::usca_error& e) {
    util::json_writer w;
    w.begin_object();
    w.member("kind", "store");
    w.member("path", path);
    w.member("ok", false);
    w.member("error", e.what());
    w.end_object();
    print_json(w);
    return 1;
  }
}

// Stand-alone manifest parse: the coordinator's loader requires the
// campaign config for binding validation, but health checks and status
// views must work from the manifest alone.
struct manifest_lease {
  std::uint64_t id = 0, first_index = 0, traces = 0, attempts = 0;
  std::string state;
  std::string shard;
};

struct manifest_view {
  std::vector<std::pair<std::string, std::uint64_t>> config; ///< in order
  std::vector<manifest_lease> leases;
  bool malformed_lines = false;
};

bool parse_manifest(FILE* in, manifest_view& mv) {
  char line[4096];
  if (!std::fgets(line, sizeof(line), in) ||
      std::strncmp(line, "usca-fabric-manifest 1", 22) != 0) {
    return false;
  }
  while (std::fgets(line, sizeof(line), in)) {
    char key[32];
    unsigned long long a = 0, b = 0, c = 0, d = 0;
    char state[16], shard[3072];
    if (std::sscanf(line, "%31s", key) != 1) {
      continue;
    }
    if (std::strcmp(key, "lease") == 0) {
      if (std::sscanf(line, "lease %llu %llu %llu %llu %15s %3071[^\n]", &a,
                      &b, &c, &d, state, shard) != 6) {
        mv.malformed_lines = true;
        continue;
      }
      mv.leases.push_back(manifest_lease{a, b, c, d, state, shard});
    } else if (std::sscanf(line, "%31s %llu", key, &a) == 2) {
      mv.config.emplace_back(key, a);
    }
  }
  return true;
}

/// Shard paths in the manifest are relative to the coordinator's cwd;
/// resolving against the manifest's parent directory lets `verify` and
/// `status` run from anywhere as long as the campaign tree moved as a
/// unit.
std::string resolve_shard(const std::string& manifest_path,
                          const std::string& shard) {
  if (!shard.empty() && shard.front() == '/') {
    return shard;
  }
  const std::size_t slash = manifest_path.rfind('/');
  if (slash == std::string::npos) {
    return shard;
  }
  return manifest_path.substr(0, slash + 1) + shard;
}

/// Strict-then-salvage shard probe shared by `verify` and `status
/// --probe`; returns the status word and fills `detail` when useful.
std::string probe_shard(const std::string& shard,
                        const manifest_lease& lease, std::string& detail) {
  try {
    const power::trace_store_reader reader(shard);
    if (reader.first_index() != lease.first_index ||
        reader.traces() != lease.traces) {
      return "range_mismatch";
    }
    return "valid";
  } catch (const util::usca_error& strict_err) {
    try {
      const power::trace_store_reader reader(
          shard, power::store_open_mode::salvage);
      detail = std::to_string(reader.damage().size()) +
               " damaged chunk(s), " + std::to_string(reader.traces()) +
               " records survive";
      return "damaged";
    } catch (const util::usca_error&) {
      detail = strict_err.what();
      return "unreadable";
    }
  }
}

int verify_manifest(const std::string& path, FILE* in) {
  manifest_view mv;
  util::json_writer w;
  w.begin_object();
  w.member("kind", "manifest");
  w.member("path", path);
  if (!parse_manifest(in, mv)) {
    w.member("ok", false);
    w.member("error", "bad magic line");
    w.end_object();
    print_json(w);
    return 1;
  }
  for (const auto& [key, value] : mv.config) {
    w.member(key, value);
  }
  bool healthy = !mv.malformed_lines;
  util::json_writer leases;
  leases.begin_array();
  for (const manifest_lease& lease : mv.leases) {
    std::string detail;
    const std::string status =
        probe_shard(resolve_shard(path, lease.shard), lease, detail);
    if (lease.state != "done" || status != "valid") {
      healthy = false;
    }
    leases.begin_object();
    leases.member("id", lease.id);
    leases.member("first_index", lease.first_index);
    leases.member("traces", lease.traces);
    leases.member("attempts", lease.attempts);
    leases.member("state", lease.state);
    leases.member("shard", lease.shard);
    leases.member("shard_status", status);
    if (!detail.empty()) {
      leases.member("detail", detail);
    }
    leases.end_object();
  }
  leases.end_array();
  w.member("ok", healthy);
  w.key("leases");
  w.raw(leases.str());
  w.end_object();
  print_json(w);
  return healthy ? 0 : 1;
}

int run_verify(int argc, char** argv) {
  std::string path;
  bool strict = false;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--strict") {
      strict = true;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "verify: unknown option '%s'\n", argv[i]);
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "verify: a store or manifest path is required\n");
    return 2;
  }
  FILE* in = std::fopen(path.c_str(), "rb");
  if (!in) {
    util::json_writer w;
    w.begin_object();
    w.member("path", path);
    w.member("ok", false);
    w.member("error", "cannot open");
    w.end_object();
    print_json(w);
    return 1;
  }
  // Trace stores start with "USCATRC2", manifests with
  // "usca-fabric-manifest" — the first bytes pick the walker.
  char magic[8] = {};
  const std::size_t got = std::fread(magic, 1, sizeof(magic), in);
  std::rewind(in);
  int rc;
  if (got >= 8 && std::strncmp(magic, "USCATRC", 7) == 0) {
    std::fclose(in);
    rc = verify_store(path, strict);
  } else {
    rc = verify_manifest(path, in);
    std::fclose(in);
  }
  return rc;
}

// -------------------------------------------------------------- status

/// PATH resolution for `status`: a manifest file as-is, an --out path
/// (".manifest" appended), or a directory holding exactly one
/// "*.manifest".  Empty return = nothing resolvable.
std::string resolve_manifest(const std::string& path) {
  struct stat st = {};
  if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) {
      return {};
    }
    std::vector<std::string> found;
    while (const dirent* entry = ::readdir(dir)) {
      const std::string_view name(entry->d_name);
      if (name.size() > 9 &&
          name.substr(name.size() - 9) == ".manifest") {
        found.push_back(path + "/" + std::string(name));
      }
    }
    ::closedir(dir);
    if (found.size() == 1) {
      return found.front();
    }
    std::fprintf(stderr, "status: directory '%s' holds %zu *.manifest files"
                 " — pass the manifest explicitly\n",
                 path.c_str(), found.size());
    return {};
  }
  if (::stat(path.c_str(), &st) == 0) {
    return path;
  }
  const std::string with_suffix = path + ".manifest";
  if (::stat(with_suffix.c_str(), &st) == 0) {
    return with_suffix;
  }
  return {};
}

int run_status(int argc, char** argv) {
  std::string path;
  bool probe = false;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--probe") {
      probe = true;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "status: unknown option '%s'\n", argv[i]);
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "status: a manifest, --out path, or directory is required\n");
    return 2;
  }
  const std::string manifest = resolve_manifest(path);
  FILE* in = manifest.empty() ? nullptr : std::fopen(manifest.c_str(), "rb");
  if (in == nullptr) {
    std::fprintf(stderr, "status: no fabric manifest at '%s'\n",
                 path.c_str());
    return 1;
  }
  manifest_view mv;
  const bool parsed = parse_manifest(in, mv);
  std::fclose(in);
  if (!parsed) {
    std::fprintf(stderr, "status: '%s' is not a fabric manifest\n",
                 manifest.c_str());
    return 1;
  }

  // Health is rendered, not judged: a mid-campaign directory full of
  // pending leases and seconds-old heartbeats exits 0 just like a
  // finished one — the reader decides what "healthy" means for it.
  const std::uint64_t now = core::wall_clock_ms();
  std::uint64_t done_leases = 0, done_traces = 0, total_traces = 0;
  std::size_t live_workers = 0;
  util::json_writer leases;
  leases.begin_array();
  for (const manifest_lease& lease : mv.leases) {
    total_traces += lease.traces;
    if (lease.state == "done") {
      ++done_leases;
      done_traces += lease.traces;
    }
    const std::string shard = resolve_shard(manifest, lease.shard);
    leases.begin_object();
    leases.member("id", lease.id);
    leases.member("first_index", lease.first_index);
    leases.member("traces", lease.traces);
    leases.member("attempts", lease.attempts);
    leases.member("state", lease.state);
    leases.member("shard", lease.shard);
    const auto hb = core::read_heartbeat(core::heartbeat_path(shard));
    if (hb) {
      const bool running =
          hb->state == "starting" || hb->state == "running";
      // wall_ms is another process's clock; a skewed or in-flight stamp
      // can sit slightly in the future — clamp, don't wrap.
      const std::uint64_t age =
          now > hb->wall_ms ? now - hb->wall_ms : 0;
      if (running && age < 2000) {
        ++live_workers;
      }
      leases.key("heartbeat");
      leases.begin_object();
      leases.member("pid", hb->pid);
      leases.member("state", hb->state);
      leases.member("produced", hb->produced);
      leases.member("age_ms", age);
      leases.end_object();
    }
    if (probe) {
      std::string detail;
      leases.member("shard_status", probe_shard(shard, lease, detail));
      if (!detail.empty()) {
        leases.member("detail", detail);
      }
    }
    leases.end_object();
  }
  leases.end_array();

  util::json_writer w;
  w.begin_object();
  w.member("kind", "status");
  w.member("manifest", manifest);
  for (const auto& [key, value] : mv.config) {
    w.member(key, value);
  }
  w.member("total_leases", static_cast<std::uint64_t>(mv.leases.size()));
  w.member("done_leases", done_leases);
  w.member("total_traces", total_traces);
  w.member("done_traces", done_traces);
  w.member("live_workers", static_cast<std::uint64_t>(live_workers));
  w.key("leases");
  w.raw(leases.str());
  w.end_object();
  print_json(w);
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  const std::string_view cmd = argc > 1 ? argv[1] : "";
  if (cmd == "run") {
    return run_coordinator(argc, argv);
  }
  if (cmd == "worker") {
    return run_worker(argc, argv);
  }
  if (cmd == "verify") {
    return run_verify(argc, argv);
  }
  if (cmd == "status") {
    return run_status(argc, argv);
  }
  std::fprintf(
      stderr,
      "usage: %s run --out=PATH [--traces=N] [--lease=N] [--workers=N]\n"
      "           [--backend=inorder|ooo] [--seed=N] [--deadline-ms=N]\n"
      "           [--max-attempts=N] [--dir=PATH] [--inject=LEASE:SPEC]...\n"
      "           [--keep-shards] [--progress] [--telemetry=PATH]\n"
      "       %s worker --first=N --traces=N --shard=PATH [--backend=B]\n"
      "           [--seed=N] [--failpoint=SPEC]\n"
      "       %s verify PATH [--strict]\n"
      "       %s status PATH [--probe]\n",
      argv[0], argv[0], argv[0], argv[0]);
  return 2;
}
