// Fault-tolerant distributed campaign driver over core::campaign_fabric:
//
//   ./build/example_usca_fabric run --out=PATH [--traces=N] [--lease=N]
//        [--workers=N] [--backend=inorder|ooo] [--seed=N]
//        [--deadline-ms=N] [--max-attempts=N] [--dir=PATH]
//        [--inject=LEASE:FAILPOINT_SPEC]... [--keep-shards]
//   ./build/example_usca_fabric worker --first=N --traces=N --shard=PATH
//        [--backend=inorder|ooo] [--seed=N] [--failpoint=SPEC]
//   ./build/example_usca_fabric verify PATH [--strict]
//
// `run` is the coordinator: it splits the campaign into range leases,
// re-execs this binary as one worker process per lease (each worker
// archives its range with core::archive_acquisition — so a killed and
// re-issued worker resumes its shard instead of starting over), and
// merges the validated shards into --out, a store byte-identical to one
// uninterrupted single-process archive.  The acquisition is the same
// demo AES-128 campaign as example_aes_cpa_demo, so the merged store
// replays there: `example_aes_cpa_demo --replay=OUT`.
//
// --inject=LEASE:SPEC arms a util/failpoint spec (e.g. `3:archive_
// record:crash@500`) in that lease's FIRST worker attempt only — the
// re-issued attempt runs clean and resumes the dead worker's shard.
// That is the kill-at-N-points robustness drill from the fabric tests,
// runnable from the shell.
//
// `verify` is the health checker (machine-readable: one JSON object on
// stdout, exit 0 = healthy): a trace store is opened in salvage mode
// and its damage map printed; a fabric manifest is walked lease by
// lease with every shard probed strict-then-salvage.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include <unistd.h>

#include "core/campaign_fabric.h"
#include "core/trace_archive.h"
#include "crypto/aes_codegen.h"
#include "power/trace_store_reader.h"
#include "util/error.h"
#include "util/failpoint.h"

using namespace usca;

namespace {

// Same campaign as example_aes_cpa_demo — the merged archive replays
// there bit-identically.
const crypto::aes_key demo_key = {0xde, 0xad, 0xbe, 0xef, 0x01, 0x23,
                                  0x45, 0x67, 0x89, 0xab, 0xcd, 0xef,
                                  0x10, 0x32, 0x54, 0x76};

core::acquisition_config demo_config(sim::backend_kind backend,
                                     std::uint64_t seed,
                                     std::size_t first_index,
                                     std::size_t traces) {
  core::acquisition_config config;
  config.first_index = first_index;
  config.traces = traces;
  config.seed = seed;
  config.averaging = 8;
  config.window = core::campaign_window{crypto::mark_encrypt_begin,
                                        crypto::mark_round1_end};
  config.backend = backend;
  config.uarch = backend == sim::backend_kind::ooo ? sim::cortex_a7_ooo()
                                                   : sim::cortex_a7();
  return config;
}

core::acquisition_campaign::setup_fn
demo_setup(const crypto::aes_program_layout& layout,
           const crypto::aes_round_keys& rk) {
  return [&layout, &rk](std::size_t, util::xoshiro256& rng,
                        sim::backend& core, std::vector<double>& labels) {
    crypto::aes_block pt;
    for (auto& b : pt) {
      b = rng.next_u8();
    }
    crypto::install_aes_inputs(core.memory(), layout, rk, pt);
    labels.resize(pt.size());
    for (std::size_t b = 0; b < pt.size(); ++b) {
      labels[b] = static_cast<double>(pt[b]);
    }
  };
}

std::string self_exe(const char* argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    return std::string(buf, static_cast<std::size_t>(n));
  }
  return argv0;
}

bool parse_u64(std::string_view arg, std::string_view prefix,
               std::uint64_t& out) {
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  const std::string text(arg.substr(prefix.size()));
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    std::fprintf(stderr, "%.*s wants an integer, got '%s'\n",
                 static_cast<int>(prefix.size()), prefix.data(),
                 text.c_str());
    std::exit(2);
  }
  out = value;
  return true;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

// ------------------------------------------------------------- worker

int run_worker(int argc, char** argv) {
  sim::backend_kind backend = sim::backend_kind::inorder;
  std::uint64_t seed = 42, first = 0, traces = 0;
  std::string shard, failpoint_spec;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--backend=", 0) == 0) {
      const auto kind = sim::parse_backend_kind(arg.substr(10));
      if (!kind) {
        std::fprintf(stderr, "unknown backend '%s'\n", argv[i] + 10);
        return 2;
      }
      backend = *kind;
    } else if (arg.rfind("--shard=", 0) == 0) {
      shard = arg.substr(8);
    } else if (arg.rfind("--failpoint=", 0) == 0) {
      failpoint_spec = arg.substr(12);
    } else if (!parse_u64(arg, "--seed=", seed) &&
               !parse_u64(arg, "--first=", first) &&
               !parse_u64(arg, "--traces=", traces)) {
      std::fprintf(stderr, "worker: unknown option '%s'\n", argv[i]);
      return 2;
    }
  }
  if (shard.empty() || traces == 0) {
    std::fprintf(stderr, "worker: --shard and --traces are required\n");
    return 2;
  }
  try {
    if (!failpoint_spec.empty()) {
      util::failpoint_configure(failpoint_spec);
    }
    // Same site the thread runner fires at worker entry, so a
    // `fabric_worker` rule kills a process worker before it archives
    // anything.
    util::failpoint("fabric_worker");
    const crypto::aes_program_layout layout =
        crypto::generate_aes128_program();
    const crypto::aes_round_keys rk = crypto::expand_key(demo_key);
    const core::acquisition_config config =
        demo_config(backend, seed, static_cast<std::size_t>(first),
                    static_cast<std::size_t>(traces));
    core::archive_acquisition(sim::program_image(layout.prog), config,
                              demo_setup(layout, rk), shard);
    return 0;
  } catch (const util::usca_error& e) {
    std::fprintf(stderr, "worker (records %llu..%llu): %s\n",
                 static_cast<unsigned long long>(first),
                 static_cast<unsigned long long>(first + traces), e.what());
    return 1;
  }
}

// -------------------------------------------------------- coordinator

int run_coordinator(int argc, char** argv) {
  sim::backend_kind backend = sim::backend_kind::inorder;
  std::uint64_t seed = 42, traces = 2'000, lease = 500, workers = 2;
  std::uint64_t deadline_ms = 0, max_attempts = 5;
  std::string out, dir;
  std::map<std::size_t, std::string> inject;
  bool keep_shards = false;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--backend=", 0) == 0) {
      const auto kind = sim::parse_backend_kind(arg.substr(10));
      if (!kind) {
        std::fprintf(stderr, "unknown backend '%s'\n", argv[i] + 10);
        return 2;
      }
      backend = *kind;
    } else if (arg.rfind("--out=", 0) == 0) {
      out = arg.substr(6);
    } else if (arg.rfind("--dir=", 0) == 0) {
      dir = arg.substr(6);
    } else if (arg.rfind("--inject=", 0) == 0) {
      const std::string_view spec = arg.substr(9);
      const std::size_t colon = spec.find(':');
      if (colon == std::string_view::npos) {
        std::fprintf(stderr,
                     "--inject wants LEASE:FAILPOINT_SPEC, got '%s'\n",
                     argv[i] + 9);
        return 2;
      }
      inject[static_cast<std::size_t>(
          std::strtoull(std::string(spec.substr(0, colon)).c_str(),
                        nullptr, 10))] = std::string(spec.substr(colon + 1));
    } else if (arg == "--keep-shards") {
      keep_shards = true;
    } else if (!parse_u64(arg, "--seed=", seed) &&
               !parse_u64(arg, "--traces=", traces) &&
               !parse_u64(arg, "--lease=", lease) &&
               !parse_u64(arg, "--workers=", workers) &&
               !parse_u64(arg, "--deadline-ms=", deadline_ms) &&
               !parse_u64(arg, "--max-attempts=", max_attempts)) {
      std::fprintf(stderr, "run: unknown option '%s'\n", argv[i]);
      return 2;
    }
  }
  if (out.empty()) {
    std::fprintf(stderr, "run: --out is required\n");
    return 2;
  }

  core::fabric_config config;
  config.manifest_path = out + ".manifest";
  config.shard_dir = dir.empty() ? out + ".shards" : dir;
  config.traces = static_cast<std::size_t>(traces);
  config.lease_traces = static_cast<std::size_t>(lease);
  config.seed = seed;
  // Must equal what archive_acquisition writes into every shard header.
  config.config_hash = core::salted_config_hash(
      core::acquisition_config_hash(demo_config(backend, seed, 0, 1)), 0);
  config.workers = static_cast<unsigned>(workers);
  config.max_attempts = static_cast<unsigned>(max_attempts);
  config.lease_deadline = std::chrono::milliseconds(deadline_ms);

  const std::string self = self_exe(argv[0]);
  const std::string backend_name(sim::backend_kind_name(backend));
  core::process_worker_runner runner(
      [&](const core::fabric_lease& l) {
        std::vector<std::string> worker_argv = {
            self,
            "worker",
            "--first=" + std::to_string(l.first_index),
            "--traces=" + std::to_string(l.traces),
            "--shard=" + l.shard_path,
            "--backend=" + backend_name,
            "--seed=" + std::to_string(seed),
        };
        const auto it = inject.find(l.id);
        if (it != inject.end() && l.attempts == 1) {
          // Injected faults hit the first attempt only: the re-issued
          // worker runs clean and resumes the dead one's shard.
          worker_argv.push_back("--failpoint=" + it->second);
        }
        return worker_argv;
      });

  try {
    core::campaign_fabric fabric(config);
    std::printf("fabric: %zu traces in %zu leases of <=%zu, %u workers "
                "(%s backend)\n",
                config.traces, fabric.leases().size(), config.lease_traces,
                config.workers, backend_name.c_str());
    const core::fabric_report report = fabric.run(runner);
    std::printf("fabric: %zu/%zu leases done (%zu already archived, "
                "%zu worker failures, %zu deadline kills, %zu invalid "
                "shards, %zu relaunches)\n",
                report.already_done + report.completed, report.leases,
                report.already_done, report.worker_failures,
                report.deadline_kills, report.invalid_shards,
                report.relaunches);
    const std::size_t merged = fabric.merge(out);
    std::printf("fabric: merged %zu records into '%s' (replay with "
                "example_aes_cpa_demo --replay=%s)\n",
                merged, out.c_str(), out.c_str());
    if (!keep_shards) {
      for (const core::fabric_lease& l : fabric.leases()) {
        ::unlink(l.shard_path.c_str());
      }
      ::unlink(config.manifest_path.c_str());
      ::rmdir(config.shard_dir.c_str());
    }
    return 0;
  } catch (const util::usca_error& e) {
    std::fprintf(stderr, "fabric: %s\n", e.what());
    return 1;
  }
}

// -------------------------------------------------------------- verify

void print_store_json(const std::string& path,
                      const power::trace_store_reader& reader) {
  std::printf("{\"kind\":\"store\",\"path\":\"%s\",\"ok\":%s,"
              "\"traces\":%zu,\"samples\":%zu,\"labels\":%zu,"
              "\"first_index\":%zu,\"next_index\":%zu,"
              "\"lost_records\":%zu,\"chunks\":%zu,\"damage\":[",
              json_escape(path).c_str(), reader.intact() ? "true" : "false",
              reader.traces(), reader.samples(), reader.labels(),
              reader.first_index(), reader.next_index(),
              reader.lost_records(), reader.chunk_count());
  bool first = true;
  for (const power::chunk_damage& d : reader.damage()) {
    std::printf("%s{\"chunk\":%zu,\"byte_offset\":%llu,\"fault\":\"%s\","
                "\"bytes_skipped\":%llu}",
                first ? "" : ",", d.chunk,
                static_cast<unsigned long long>(d.byte_offset),
                power::store_fault_name(d.fault),
                static_cast<unsigned long long>(d.bytes_skipped));
    first = false;
  }
  std::printf("]}\n");
}

int verify_store(const std::string& path, bool strict) {
  try {
    const power::trace_store_reader reader(
        path, strict ? power::store_open_mode::strict
                     : power::store_open_mode::salvage);
    print_store_json(path, reader);
    return reader.intact() ? 0 : 1;
  } catch (const util::usca_error& e) {
    std::printf("{\"kind\":\"store\",\"path\":\"%s\",\"ok\":false,"
                "\"error\":\"%s\"}\n",
                json_escape(path).c_str(), json_escape(e.what()).c_str());
    return 1;
  }
}

int verify_manifest(const std::string& path, FILE* in) {
  // Stand-alone manifest walk: the coordinator's loader requires the
  // campaign config for binding validation, but a health check must work
  // from the manifest alone.
  char line[4096];
  if (!std::fgets(line, sizeof(line), in) ||
      std::strncmp(line, "usca-fabric-manifest 1", 22) != 0) {
    std::printf("{\"kind\":\"manifest\",\"path\":\"%s\",\"ok\":false,"
                "\"error\":\"bad magic line\"}\n",
                json_escape(path).c_str());
    return 1;
  }
  std::printf("{\"kind\":\"manifest\",\"path\":\"%s\"",
              json_escape(path).c_str());
  bool healthy = true;
  std::string leases_json;
  while (std::fgets(line, sizeof(line), in)) {
    char key[32];
    unsigned long long a = 0, b = 0, c = 0, d = 0;
    char state[16], shard[3072];
    if (std::sscanf(line, "%31s", key) != 1) {
      continue;
    }
    if (std::strcmp(key, "lease") == 0) {
      if (std::sscanf(line, "lease %llu %llu %llu %llu %15s %3071[^\n]", &a,
                      &b, &c, &d, state, shard) != 6) {
        healthy = false;
        continue;
      }
      std::string status = "valid";
      std::string detail;
      try {
        const power::trace_store_reader reader(shard);
        if (reader.first_index() != b || reader.traces() != c) {
          status = "range_mismatch";
        }
      } catch (const util::usca_error& strict_err) {
        try {
          const power::trace_store_reader reader(
              shard, power::store_open_mode::salvage);
          status = "damaged";
          detail = std::to_string(reader.damage().size()) +
                   " damaged chunk(s), " + std::to_string(reader.traces()) +
                   " records survive";
        } catch (const util::usca_error&) {
          status = "unreadable";
          detail = strict_err.what();
        }
      }
      if (std::strcmp(state, "done") != 0 || status != "valid") {
        healthy = false;
      }
      leases_json += leases_json.empty() ? "" : ",";
      leases_json += "{\"id\":" + std::to_string(a) +
                     ",\"first_index\":" + std::to_string(b) +
                     ",\"traces\":" + std::to_string(c) +
                     ",\"attempts\":" + std::to_string(d) + ",\"state\":\"" +
                     state + "\",\"shard\":\"" + json_escape(shard) +
                     "\",\"shard_status\":\"" + status + "\"";
      if (!detail.empty()) {
        leases_json += ",\"detail\":\"" + json_escape(detail) + "\"";
      }
      leases_json += "}";
    } else if (std::sscanf(line, "%31s %llu", key, &a) == 2) {
      std::printf(",\"%s\":%llu", json_escape(key).c_str(), a);
    }
  }
  std::printf(",\"ok\":%s,\"leases\":[%s]}\n", healthy ? "true" : "false",
              leases_json.c_str());
  return healthy ? 0 : 1;
}

int run_verify(int argc, char** argv) {
  std::string path;
  bool strict = false;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--strict") {
      strict = true;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "verify: unknown option '%s'\n", argv[i]);
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "verify: a store or manifest path is required\n");
    return 2;
  }
  FILE* in = std::fopen(path.c_str(), "rb");
  if (!in) {
    std::printf("{\"path\":\"%s\",\"ok\":false,\"error\":\"cannot open\"}\n",
                json_escape(path).c_str());
    return 1;
  }
  // Trace stores start with "USCATRC2", manifests with
  // "usca-fabric-manifest" — the first bytes pick the walker.
  char magic[8] = {};
  const std::size_t got = std::fread(magic, 1, sizeof(magic), in);
  std::rewind(in);
  int rc;
  if (got >= 8 && std::strncmp(magic, "USCATRC", 7) == 0) {
    std::fclose(in);
    rc = verify_store(path, strict);
  } else {
    rc = verify_manifest(path, in);
    std::fclose(in);
  }
  return rc;
}

} // namespace

int main(int argc, char** argv) {
  const std::string_view cmd = argc > 1 ? argv[1] : "";
  if (cmd == "run") {
    return run_coordinator(argc, argv);
  }
  if (cmd == "worker") {
    return run_worker(argc, argv);
  }
  if (cmd == "verify") {
    return run_verify(argc, argv);
  }
  std::fprintf(
      stderr,
      "usage: %s run --out=PATH [--traces=N] [--lease=N] [--workers=N]\n"
      "           [--backend=inorder|ooo] [--seed=N] [--deadline-ms=N]\n"
      "           [--max-attempts=N] [--dir=PATH] [--inject=LEASE:SPEC]...\n"
      "           [--keep-shards]\n"
      "       %s worker --first=N --traces=N --shard=PATH [--backend=B]\n"
      "           [--seed=N] [--failpoint=SPEC]\n"
      "       %s verify PATH [--strict]\n",
      argv[0], argv[0], argv[0]);
  return 2;
}
