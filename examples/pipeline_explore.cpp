// Micro-architecture exploration demo: what can be learned about an
// unknown CPU purely from cycle counts (the paper's Section 3 method).
//
// Runs the CPI explorer against three configurations — the Cortex-A7
// model, its scalar ablation, and an "idealized" structurally-limited
// dual-issue core — and prints the deduced structure for each.  A
// timing-only pass of core::acquisition_campaign (synthesis disabled: the
// engine then records no activity at all) then measures an instruction
// mix on every configuration with randomized inputs, showing both halves
// of the paper's timing argument: the cycle count distinguishes the
// micro-architectures, and for each micro-architecture it is
// data-independent.
#include <cstdio>

#include "core/acquisition.h"
#include "core/cpi_explorer.h"

using namespace usca;
using isa::reg;

namespace {

void explore(const char* title, const sim::micro_arch_config& config) {
  std::printf("=== %s ===\n", title);
  const core::cpi_explorer explorer(config);
  std::printf("%s", explorer.infer_structure().to_string().c_str());

  std::printf("dual-issue matrix (rows = older, cols = younger):\n    ");
  for (std::size_t c = 0; c < core::num_probe_classes; ++c) {
    std::printf("%-7.6s",
                std::string(core::probe_class_name(
                                static_cast<core::probe_class>(c)))
                    .c_str());
  }
  std::printf("\n");
  const core::dual_issue_matrix matrix = explorer.explore();
  for (std::size_t r = 0; r < core::num_probe_classes; ++r) {
    std::printf("%-6.5s",
                std::string(core::probe_class_name(
                                static_cast<core::probe_class>(r)))
                    .c_str());
    for (std::size_t c = 0; c < core::num_probe_classes; ++c) {
      std::printf("%-7s", matrix.entry[r][c].dual_issued ? "Y" : ".");
    }
    std::printf("\n");
  }
  std::printf("\n");
}

/// An instruction mix whose schedule exercises the configuration
/// differences: a run of pairable independent ALU ops (dual-issue
/// halves their cost), then shifts (ALU0-only, structural contention)
/// and a multiply with a dependent use.
sim::program_image probe_mix() {
  asmx::program_builder b;
  // ALU-imm + ALU pairs: legal in the A7's issue PLA (Table 1), so any
  // dual-issue front end wins here — separates the scalar ablation.
  for (int i = 0; i < 4; ++i) {
    b.emit(isa::ins::add_imm(reg::r1, reg::r2, 7));
    b.emit(isa::ins::eor(reg::r4, reg::r5, reg::r6));
  }
  // Reg-reg ALU + shift-imm pairs: three register reads and two distinct
  // units, so structurally pairable — but the A7's issue PLA forbids the
  // (ALU, shift) combination.  Separates the idealized core from the
  // real one.
  for (int i = 0; i < 4; ++i) {
    b.emit(isa::ins::add(reg::r1, reg::r2, reg::r3));
    b.emit(isa::ins::lsl(reg::r7, reg::r5, 3));
  }
  b.emit(isa::ins::lsl(reg::r7, reg::r2, 3));
  b.emit(isa::ins::lsl(reg::r8, reg::r5, 7));
  b.emit(isa::ins::mul(reg::r9, reg::r2, reg::r5));
  b.emit(isa::ins::add(reg::r10, reg::r9, reg::r1));
  b.emit(isa::ins::eor(reg::r11, reg::r4, reg::r7));
  return sim::program_image(b.build());
}

/// Timing-only acquisition of the mix: 64 trials with random inputs per
/// trial, no trace synthesis, no activity recording.
void measure_timing(const char* title, const sim::micro_arch_config& config) {
  core::acquisition_config acq;
  acq.traces = 64;
  acq.seed = 0x71e;
  acq.synthesize = false;
  acq.full_run_window = true;
  acq.uarch = config;
  core::acquisition_campaign campaign(probe_mix(), acq);
  campaign.set_setup([](std::size_t, util::xoshiro256& rng,
                        sim::backend& pipe, std::vector<double>&) {
    for (int r = 2; r <= 6; ++r) {
      pipe.state().set_reg(static_cast<reg>(r), rng.next_u32());
    }
  });

  std::uint64_t min_cycles = ~0ULL;
  std::uint64_t max_cycles = 0;
  std::uint64_t instructions = 0;
  campaign.run([&](core::acquisition_record&& rec) {
    min_cycles = std::min(min_cycles, rec.cycles);
    max_cycles = std::max(max_cycles, rec.cycles);
    instructions = rec.instructions;
  });
  std::printf("  %-44s %3llu cycles, CPI %.2f, %s\n", title,
              static_cast<unsigned long long>(max_cycles),
              static_cast<double>(max_cycles) /
                  static_cast<double>(instructions),
              min_cycles == max_cycles ? "data-independent"
                                       : "DATA-DEPENDENT!");
}

} // namespace

int main() {
  sim::micro_arch_config ideal = sim::cortex_a7();
  ideal.policy = sim::issue_policy::structural;

  explore("ARM Cortex-A7-like core (the paper's target)", sim::cortex_a7());
  explore("scalar ablation of the same core", sim::cortex_a7_scalar());
  explore("idealized core: structural limits only (no issue PLA)", ideal);

  std::printf("=== timing-only acquisition of one instruction mix ===\n"
              "(64 randomized trials each through the campaign engine,\n"
              "synthesis and activity recording disabled)\n\n");
  measure_timing("Cortex-A7-like core:", sim::cortex_a7());
  measure_timing("scalar ablation:", sim::cortex_a7_scalar());
  measure_timing("idealized structural dual-issue:", ideal);

  std::printf("\nIdentical ISA, three different issue behaviours: the\n"
              "micro-architecture is observable from timing alone, and\n"
              "(per the paper) it determines the side-channel leakage.\n");
  return 0;
}
