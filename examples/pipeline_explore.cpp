// Micro-architecture exploration demo: what can be learned about an
// unknown CPU purely from cycle counts (the paper's Section 3 method).
//
// Runs the CPI explorer against three configurations — the Cortex-A7
// model, its scalar ablation, and an "idealized" structurally-limited
// dual-issue core — and prints the deduced structure for each.
#include <cstdio>

#include "core/cpi_explorer.h"

using namespace usca;

namespace {

void explore(const char* title, const sim::micro_arch_config& config) {
  std::printf("=== %s ===\n", title);
  const core::cpi_explorer explorer(config);
  std::printf("%s", explorer.infer_structure().to_string().c_str());

  std::printf("dual-issue matrix (rows = older, cols = younger):\n    ");
  for (std::size_t c = 0; c < core::num_probe_classes; ++c) {
    std::printf("%-7.6s",
                std::string(core::probe_class_name(
                                static_cast<core::probe_class>(c)))
                    .c_str());
  }
  std::printf("\n");
  const core::dual_issue_matrix matrix = explorer.explore();
  for (std::size_t r = 0; r < core::num_probe_classes; ++r) {
    std::printf("%-6.5s",
                std::string(core::probe_class_name(
                                static_cast<core::probe_class>(r)))
                    .c_str());
    for (std::size_t c = 0; c < core::num_probe_classes; ++c) {
      std::printf("%-7s", matrix.entry[r][c].dual_issued ? "Y" : ".");
    }
    std::printf("\n");
  }
  std::printf("\n");
}

} // namespace

int main() {
  explore("ARM Cortex-A7-like core (the paper's target)", sim::cortex_a7());
  explore("scalar ablation of the same core", sim::cortex_a7_scalar());

  sim::micro_arch_config ideal = sim::cortex_a7();
  ideal.policy = sim::issue_policy::structural;
  explore("idealized core: structural limits only (no issue PLA)", ideal);

  std::printf("Identical ISA, three different issue behaviours: the\n"
              "micro-architecture is observable from timing alone, and\n"
              "(per the paper) it determines the side-channel leakage.\n");
  return 0;
}
