// End-to-end CPA attack demo against the generated AES-128 (a compact
// version of the paper's Section 5), runnable on either core model and
// on archived traces:
//
//   ./build/example_aes_cpa_demo [--backend=inorder|ooo] [--traces=N]
//                                [--dump-traces=PATH] [--replay=PATH]
//                                [--window=first:last] [--per-round]
//
// Recovers key byte 0 from synthesized power traces with the coarse
// Hamming-weight-of-SubBytes-output model and prints the top candidates.
// Acquisition runs through the generic core::acquisition_campaign — the
// same parallel, per-index-seeded hot path the full-size experiments use
// — streamed through the batched analysis-pass architecture, so the same
// CPA pass consumes either a live simulation (optionally archived on the
// side with --dump-traces) or an mmap replay of a previous archive
// (--replay, whole chunks zero-copy, no simulation at all).  The two
// paths produce bit-identical correlations; the demo doubles as the
// smallest possible simulate-once/analyse-many walkthrough.
//
// --window restricts the attack to a sample slice of each trace, and
// --per-round widens acquisition to the whole encryption and fans ONE
// pass over the data into per-AES-round CPA passes (initial AddRoundKey,
// the round-1 sub-phases, then every later round through round 10) — the
// multi-window workflow: N windowed analyses, one read of the stream.
// The round-1 SubBytes window recovers the key; the same hypothesis
// decays through the later rounds, localizing the leakage in time.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/analysis_sinks.h"
#include "core/trace_archive.h"
#include "crypto/aes_codegen.h"
#include "power/trace_store_reader.h"
#include "stats/cpa.h"
#include "util/bitops.h"
#include "util/error.h"

using namespace usca;

namespace {

const crypto::aes_key demo_key = {0xde, 0xad, 0xbe, 0xef, 0x01, 0x23,
                                  0x45, 0x67, 0x89, 0xab, 0xcd, 0xef,
                                  0x10, 0x32, 0x54, 0x76};

/// Narrates acquisition progress alongside the analysis passes (kept a
/// per-record trace_sink on purpose — it rides in a per_trace_adapter).
class progress_sink final : public core::trace_sink {
public:
  void consume(const core::trace_view& view) override {
    if ((view.index + 1) % 250 == 0) {
      std::printf("  collected %zu traces...\n", view.index + 1);
    }
  }
};

double subbytes_model(std::size_t guess, std::size_t pt_byte) {
  return static_cast<double>(util::hamming_weight(
      crypto::subbytes_hypothesis(static_cast<std::uint8_t>(pt_byte),
                                  static_cast<std::uint8_t>(guess))));
}

core::acquisition_config
demo_config(sim::backend_kind backend, std::size_t traces, bool per_round) {
  core::acquisition_config config;
  config.traces = traces;
  config.seed = 42;
  config.averaging = 8;
  // The per-round sweep needs samples from all ten rounds; the default
  // attack only ever looks at the paper's Figure 3 (round 1) window.
  config.window =
      per_round ? core::campaign_window{crypto::mark_encrypt_begin,
                                        crypto::mark_encrypt_end}
                : core::campaign_window{crypto::mark_encrypt_begin,
                                        crypto::mark_round1_end};
  config.backend = backend;
  config.uarch = backend == sim::backend_kind::ooo ? sim::cortex_a7_ooo()
                                                   : sim::cortex_a7();
  return config;
}

core::acquisition_campaign
make_campaign(const crypto::aes_program_layout& layout,
              const crypto::aes_round_keys& rk,
              const core::acquisition_config& config) {
  core::acquisition_campaign campaign(sim::program_image(layout.prog),
                                      config);
  campaign.set_setup([&layout, &rk](std::size_t, util::xoshiro256& rng,
                                    sim::backend& core,
                                    std::vector<double>& labels) {
    crypto::aes_block pt;
    for (auto& b : pt) {
      b = rng.next_u8();
    }
    crypto::install_aes_inputs(core.memory(), layout, rk, pt);
    labels.resize(pt.size());
    for (std::size_t b = 0; b < pt.size(); ++b) {
      labels[b] = static_cast<double>(pt[b]); // all 16 -> full-key replay
    }
  });
  return campaign;
}

struct phase_window {
  std::string name;
  core::window_spec window;
};

/// Derives the per-round sample windows from the trigger marks of one
/// simulated trace (the phase boundaries are data-independent —
/// constant-time AES — so trace 0 stands for all): the initial
/// AddRoundKey, the round-1 sub-phases of the paper's Figure 3, then
/// every later round up to round 10.
std::vector<phase_window>
aes_phase_windows(const core::acquisition_record& rec) {
  const auto cycle_of = [&rec](std::uint16_t id) -> std::size_t {
    for (const sim::mark_stamp& m : rec.marks) {
      if (m.id == id) {
        return static_cast<std::size_t>(m.cycle - rec.window_begin);
      }
    }
    throw util::analysis_error("AES phase mark missing from the trace");
  };
  using crypto::aes_round_phase;
  const std::size_t ark0 = cycle_of(crypto::mark_ark0_end);
  const std::size_t sb1 = cycle_of(crypto::mark_sb1_end);
  const std::size_t shr1 = cycle_of(crypto::mark_shr1_end);
  const std::size_t mc1 = cycle_of(crypto::mark_round1_end);
  std::vector<phase_window> out = {
      {"AddRoundKey 0", core::window_spec::range(0, ark0)},
      {"SubBytes 1", core::window_spec::range(ark0, sb1)},
      {"ShiftRows 1", core::window_spec::range(sb1, shr1)},
      {"MixColumns 1", core::window_spec::range(shr1, mc1)},
  };
  const auto end =
      static_cast<std::size_t>(rec.window_end - rec.window_begin);
  std::size_t prev = mc1;
  for (int round = 1; round <= 10; ++round) {
    const std::uint16_t ark_mark =
        crypto::aes_round_phase_mark(round, aes_round_phase::add_round_key);
    const std::size_t round_end =
        round == 10 ? end : cycle_of(ark_mark);
    char name[24];
    std::snprintf(name, sizeof name,
                  round == 1 ? "AddRoundKey %d" : "round %d", round);
    out.push_back({name, core::window_spec::range(prev, round_end)});
    prev = round_end;
  }
  return out;
}

int report_and_check(const stats::cpa_result& result) {
  std::vector<std::size_t> order(256);
  for (std::size_t g = 0; g < 256; ++g) {
    order[g] = g;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::fabs(result.peak_of(a).corr) >
           std::fabs(result.peak_of(b).corr);
  });

  std::printf("\ntop-5 key guesses:\n");
  for (int i = 0; i < 5; ++i) {
    const auto peak = result.peak_of(order[static_cast<std::size_t>(i)]);
    std::printf("  %d. guess 0x%02zx  |corr| %.4f at cycle %zu%s\n", i + 1,
                peak.guess, std::fabs(peak.corr), peak.sample,
                peak.guess == demo_key[0] ? "   <== true key byte" : "");
  }
  std::printf("\ndistinguishing z-score of the true key: %.2f "
              "(>2.33 = 99%% confidence)\n",
              result.distinguishing_z(demo_key[0]));
  return result.best().guess == demo_key[0] ? 0 : 1;
}

void report_phases(const std::vector<phase_window>& phases,
                   const std::vector<core::cpa_sink*>& sinks) {
  std::printf("\nper-AES-round CPA (one pass over the data, %zu windowed "
              "passes):\n",
              phases.size());
  std::printf("  %-14s %-12s %-10s %-8s %-6s %s\n", "phase", "window",
              "best", "|corr|", "rank", "z(true)");
  for (std::size_t p = 0; p < phases.size(); ++p) {
    const stats::cpa_result result =
        sinks[p]->cpa().solve(subbytes_model, 256);
    const auto best = result.best();
    char window_text[32];
    std::snprintf(window_text, sizeof window_text, "[%zu, %zu)",
                  phases[p].window.first, phases[p].window.last);
    std::printf("  %-14s %-12s 0x%02zx%s %8.4f %5zu %8.2f\n",
                phases[p].name.c_str(), window_text, best.guess,
                best.guess == demo_key[0] ? "*" : " ",
                std::fabs(best.corr), result.rank_of(demo_key[0]),
                result.distinguishing_z(demo_key[0]));
  }
  std::printf("  (* = true key byte recovered in that window alone)\n");
}

} // namespace

int main(int argc, char** argv) {
  sim::backend_kind backend = sim::backend_kind::inorder;
  std::size_t traces = 1'000;
  std::string dump_path;
  std::string replay_path;
  std::optional<core::window_spec> window;
  bool per_round = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--backend=", 0) == 0) {
      const auto kind = sim::parse_backend_kind(arg.substr(10));
      if (!kind) {
        std::fprintf(stderr, "unknown backend '%s' (inorder|ooo)\n",
                     argv[i] + 10);
        return 2;
      }
      backend = *kind;
    } else if (arg.rfind("--traces=", 0) == 0) {
      char* end = nullptr;
      const unsigned long long value = std::strtoull(argv[i] + 9, &end, 10);
      if (end == argv[i] + 9 || *end != '\0' || value == 0) {
        std::fprintf(stderr, "--traces wants a positive integer, got '%s'\n",
                     argv[i] + 9);
        return 2;
      }
      traces = static_cast<std::size_t>(value);
    } else if (arg.rfind("--dump-traces=", 0) == 0) {
      dump_path = arg.substr(14);
    } else if (arg.rfind("--replay=", 0) == 0) {
      replay_path = arg.substr(9);
    } else if (arg.rfind("--window=", 0) == 0) {
      char* end = nullptr;
      const char* text = argv[i] + 9;
      const unsigned long long first = std::strtoull(text, &end, 10);
      if (end == text || *end != ':') {
        std::fprintf(stderr, "--window wants first:last, got '%s'\n", text);
        return 2;
      }
      const char* last_text = end + 1;
      const unsigned long long last = std::strtoull(last_text, &end, 10);
      if (end == last_text || *end != '\0' || last <= first) {
        std::fprintf(stderr, "--window wants first:last, got '%s'\n", text);
        return 2;
      }
      window = core::window_spec::range(static_cast<std::size_t>(first),
                                       static_cast<std::size_t>(last));
    } else if (arg == "--per-round") {
      per_round = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--backend=inorder|ooo] [--traces=N] "
                   "[--dump-traces=PATH] [--replay=PATH] "
                   "[--window=first:last] [--per-round]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!replay_path.empty() && !dump_path.empty()) {
    std::fprintf(stderr, "--replay and --dump-traces are exclusive\n");
    return 2;
  }
  if (window && per_round) {
    std::fprintf(stderr, "--window and --per-round are exclusive\n");
    return 2;
  }

  const crypto::aes_program_layout layout = crypto::generate_aes128_program();
  const crypto::aes_round_keys rk = crypto::expand_key(demo_key);

  // The windowed passes: one full-window CPA plus (with --per-round) one
  // CPA per AES phase — all consuming the SAME pumped stream.
  core::cpa_sink cpa(0, window.value_or(core::window_spec::all()));
  std::vector<phase_window> phases;
  std::vector<core::cpa_sink> phase_storage;
  std::vector<core::cpa_sink*> phase_sinks;
  const auto build_phase_sinks = [&](const core::acquisition_record& rec) {
    phases = aes_phase_windows(rec);
    phase_storage.reserve(phases.size());
    for (const phase_window& phase : phases) {
      phase_storage.emplace_back(0, phase.window);
    }
    for (core::cpa_sink& sink : phase_storage) {
      phase_sinks.push_back(&sink);
    }
  };

  if (!replay_path.empty()) {
    // ---- replay path: CPA over the archive, no re-simulation ----------
    std::optional<power::trace_store_reader> opened;
    try {
      opened.emplace(replay_path);
    } catch (const util::usca_error& e) {
      std::fprintf(stderr, "cannot replay: %s\n", e.what());
      return 2;
    }
    const power::trace_store_reader& reader = *opened;
    std::printf("== CPA attack replayed from '%s' ==\n\n",
                replay_path.c_str());
    std::printf("  archive: %zu traces x %zu samples, indices [%zu, %zu), "
                "%zu chunk(s), %.1f MiB payload\n",
                reader.traces(), reader.samples(), reader.first_index(),
                reader.next_index(), reader.chunk_count(),
                static_cast<double>(reader.payload_bytes()) /
                    (1024.0 * 1024.0));
    if (reader.traces() == 0) {
      std::fprintf(stderr, "archive holds no traces\n");
      return 2;
    }
    if (per_round) {
      // Phase boundaries come from the trigger marks, which archives do
      // not carry: one trace re-simulated under the demo configuration
      // recovers them (per-index seeding makes it THE trace behind
      // record 0 when the archive came from --dump-traces).
      core::acquisition_campaign probe = make_campaign(
          layout, rk, demo_config(backend, 1, per_round));
      const core::acquisition_record rec =
          probe.produce(reader.first_index());
      if (rec.window_end - rec.window_begin != reader.samples()) {
        std::fprintf(stderr,
                     "archive window (%zu samples) does not match the "
                     "%s backend's window (%zu); pass the --backend the "
                     "archive was recorded with\n",
                     reader.samples(),
                     std::string(sim::backend_kind_name(backend)).c_str(),
                     static_cast<std::size_t>(rec.window_end -
                                              rec.window_begin));
        return 2;
      }
      build_phase_sinks(rec);
    }
    core::archive_source source(reader);
    std::vector<core::analysis_pass*> passes = {&cpa};
    for (core::cpa_sink* sink : phase_sinks) {
      passes.push_back(sink);
    }
    try {
      core::pump(source, passes);
    } catch (const util::usca_error& e) {
      std::fprintf(stderr, "analysis failed: %s\n", e.what());
      return 2;
    }
    if (per_round) {
      report_phases(phases, phase_sinks);
    }
    return report_and_check(cpa.cpa().solve(subbytes_model, 256));
  }

  // ---- live path: acquisition campaign, optionally archived -----------
  std::printf("== CPA attack on simulated AES-128 (key byte 0, %zu traces, "
              "%s backend) ==\n\n",
              traces,
              std::string(sim::backend_kind_name(backend)).c_str());

  core::acquisition_campaign campaign =
      make_campaign(layout, rk, demo_config(backend, traces, per_round));
  if (per_round) {
    build_phase_sinks(campaign.produce(0));
  }

  progress_sink progress;
  core::per_trace_adapter progress_pass(progress);
  std::vector<core::analysis_pass*> passes = {&cpa, &progress_pass};
  for (core::cpa_sink* sink : phase_sinks) {
    passes.push_back(sink);
  }
  std::optional<core::store_sink> store;
  if (!dump_path.empty()) {
    power::trace_store_descriptor desc;
    desc.seed = campaign.config().seed;
    desc.config_hash = core::salted_config_hash(
        core::acquisition_config_hash(campaign.config()), 0);
    store.emplace(dump_path, desc);
    passes.push_back(&*store);
  }

  core::acquisition_source source(campaign);
  try {
    core::pump(source, passes);
  } catch (const util::usca_error& e) {
    std::fprintf(stderr, "analysis failed: %s\n", e.what());
    return 2;
  }

  if (store) {
    std::printf("  archived %zu traces to '%s' (replay with "
                "--replay=%s)\n",
                store->records(), dump_path.c_str(), dump_path.c_str());
  }
  if (per_round) {
    report_phases(phases, phase_sinks);
  }
  return report_and_check(cpa.cpa().solve(subbytes_model, 256));
}
