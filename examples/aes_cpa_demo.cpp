// End-to-end CPA attack demo against the generated AES-128 (a compact
// version of the paper's Section 5), runnable on either core model:
//
//   ./build/example_aes_cpa_demo [--backend=inorder|ooo] [--traces=N]
//
// Recovers key byte 0 from synthesized power traces with the coarse
// Hamming-weight-of-SubBytes-output model and prints the top candidates.
// Acquisition runs through the generic core::acquisition_campaign — the
// same parallel, per-index-seeded hot path the full-size experiments use
// — with the backend selected by flag, so the demo doubles as the
// smallest possible in-order-vs-OoO leakage comparison.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "core/acquisition.h"
#include "crypto/aes_codegen.h"
#include "stats/cpa.h"
#include "util/bitops.h"

using namespace usca;

int main(int argc, char** argv) {
  sim::backend_kind backend = sim::backend_kind::inorder;
  std::size_t traces = 1'000;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--backend=", 0) == 0) {
      const auto kind = sim::parse_backend_kind(arg.substr(10));
      if (!kind) {
        std::fprintf(stderr, "unknown backend '%s' (inorder|ooo)\n",
                     argv[i] + 10);
        return 2;
      }
      backend = *kind;
    } else if (arg.rfind("--traces=", 0) == 0) {
      char* end = nullptr;
      const unsigned long long value = std::strtoull(argv[i] + 9, &end, 10);
      if (end == argv[i] + 9 || *end != '\0' || value == 0) {
        std::fprintf(stderr, "--traces wants a positive integer, got '%s'\n",
                     argv[i] + 9);
        return 2;
      }
      traces = static_cast<std::size_t>(value);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--backend=inorder|ooo] [--traces=N]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("== CPA attack on simulated AES-128 (key byte 0, %zu traces, "
              "%s backend) ==\n\n",
              traces,
              std::string(sim::backend_kind_name(backend)).c_str());

  const crypto::aes_program_layout layout = crypto::generate_aes128_program();
  const crypto::aes_key key = {0xde, 0xad, 0xbe, 0xef, 0x01, 0x23,
                               0x45, 0x67, 0x89, 0xab, 0xcd, 0xef,
                               0x10, 0x32, 0x54, 0x76};
  const crypto::aes_round_keys rk = crypto::expand_key(key);

  core::acquisition_config config;
  config.traces = traces;
  config.seed = 42;
  config.averaging = 8;
  config.window =
      core::campaign_window{crypto::mark_encrypt_begin,
                            crypto::mark_round1_end};
  config.backend = backend;
  config.uarch = backend == sim::backend_kind::ooo ? sim::cortex_a7_ooo()
                                                   : sim::cortex_a7();
  core::acquisition_campaign campaign(sim::program_image(layout.prog),
                                      config);
  campaign.set_setup([&layout, &rk](std::size_t, util::xoshiro256& rng,
                                    sim::backend& core,
                                    std::vector<double>& labels) {
    crypto::aes_block pt;
    for (auto& b : pt) {
      b = rng.next_u8();
    }
    crypto::install_aes_inputs(core.memory(), layout, rk, pt);
    labels.assign(1, static_cast<double>(pt[0]));
  });

  stats::partitioned_cpa cpa(0);
  bool ready = false;
  campaign.run([&](core::acquisition_record&& rec) {
    if (!ready) {
      cpa = stats::partitioned_cpa(rec.samples.size());
      ready = true;
    }
    cpa.add_trace(static_cast<std::uint8_t>(rec.labels[0]), rec.samples);
    if ((rec.index + 1) % 250 == 0) {
      std::printf("  collected %zu traces...\n", rec.index + 1);
    }
  });

  const stats::cpa_result result = cpa.solve(
      [](std::size_t guess, std::size_t pt_byte) {
        return static_cast<double>(util::hamming_weight(
            crypto::subbytes_hypothesis(static_cast<std::uint8_t>(pt_byte),
                                        static_cast<std::uint8_t>(guess))));
      },
      256);

  // Rank all guesses by their correlation peak.
  std::vector<std::size_t> order(256);
  for (std::size_t g = 0; g < 256; ++g) {
    order[g] = g;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::fabs(result.peak_of(a).corr) >
           std::fabs(result.peak_of(b).corr);
  });

  std::printf("\ntop-5 key guesses:\n");
  for (int i = 0; i < 5; ++i) {
    const auto peak = result.peak_of(order[static_cast<std::size_t>(i)]);
    std::printf("  %d. guess 0x%02zx  |corr| %.4f at cycle %zu%s\n", i + 1,
                peak.guess, std::fabs(peak.corr), peak.sample,
                peak.guess == key[0] ? "   <== true key byte" : "");
  }
  std::printf("\ndistinguishing z-score of the true key: %.2f "
              "(>2.33 = 99%% confidence)\n",
              result.distinguishing_z(key[0]));
  return result.best().guess == key[0] ? 0 : 1;
}
