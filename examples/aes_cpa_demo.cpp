// End-to-end CPA attack demo against the generated AES-128 (a compact
// version of the paper's Section 5), runnable on either core model and
// on archived traces:
//
//   ./build/example_aes_cpa_demo [--backend=inorder|ooo] [--traces=N]
//                                [--dump-traces=PATH] [--replay=PATH]
//
// Recovers key byte 0 from synthesized power traces with the coarse
// Hamming-weight-of-SubBytes-output model and prints the top candidates.
// Acquisition runs through the generic core::acquisition_campaign — the
// same parallel, per-index-seeded hot path the full-size experiments use
// — streamed through the trace source/sink architecture, so the same
// CPA sink consumes either a live simulation (optionally archived on the
// side with --dump-traces) or an mmap replay of a previous archive
// (--replay, no simulation at all).  The two paths produce bit-identical
// correlations; the demo doubles as the smallest possible
// simulate-once/analyse-many walkthrough.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/analysis_sinks.h"
#include "core/trace_archive.h"
#include "crypto/aes_codegen.h"
#include "power/trace_store_reader.h"
#include "stats/cpa.h"
#include "util/bitops.h"
#include "util/error.h"

using namespace usca;

namespace {

const crypto::aes_key demo_key = {0xde, 0xad, 0xbe, 0xef, 0x01, 0x23,
                                  0x45, 0x67, 0x89, 0xab, 0xcd, 0xef,
                                  0x10, 0x32, 0x54, 0x76};

/// Narrates acquisition progress alongside the analysis sinks.
class progress_sink final : public core::trace_sink {
public:
  void consume(const core::trace_view& view) override {
    if ((view.index + 1) % 250 == 0) {
      std::printf("  collected %zu traces...\n", view.index + 1);
    }
  }
};

int report_and_check(const stats::cpa_result& result) {
  std::vector<std::size_t> order(256);
  for (std::size_t g = 0; g < 256; ++g) {
    order[g] = g;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::fabs(result.peak_of(a).corr) >
           std::fabs(result.peak_of(b).corr);
  });

  std::printf("\ntop-5 key guesses:\n");
  for (int i = 0; i < 5; ++i) {
    const auto peak = result.peak_of(order[static_cast<std::size_t>(i)]);
    std::printf("  %d. guess 0x%02zx  |corr| %.4f at cycle %zu%s\n", i + 1,
                peak.guess, std::fabs(peak.corr), peak.sample,
                peak.guess == demo_key[0] ? "   <== true key byte" : "");
  }
  std::printf("\ndistinguishing z-score of the true key: %.2f "
              "(>2.33 = 99%% confidence)\n",
              result.distinguishing_z(demo_key[0]));
  return result.best().guess == demo_key[0] ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
  sim::backend_kind backend = sim::backend_kind::inorder;
  std::size_t traces = 1'000;
  std::string dump_path;
  std::string replay_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--backend=", 0) == 0) {
      const auto kind = sim::parse_backend_kind(arg.substr(10));
      if (!kind) {
        std::fprintf(stderr, "unknown backend '%s' (inorder|ooo)\n",
                     argv[i] + 10);
        return 2;
      }
      backend = *kind;
    } else if (arg.rfind("--traces=", 0) == 0) {
      char* end = nullptr;
      const unsigned long long value = std::strtoull(argv[i] + 9, &end, 10);
      if (end == argv[i] + 9 || *end != '\0' || value == 0) {
        std::fprintf(stderr, "--traces wants a positive integer, got '%s'\n",
                     argv[i] + 9);
        return 2;
      }
      traces = static_cast<std::size_t>(value);
    } else if (arg.rfind("--dump-traces=", 0) == 0) {
      dump_path = arg.substr(14);
    } else if (arg.rfind("--replay=", 0) == 0) {
      replay_path = arg.substr(9);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--backend=inorder|ooo] [--traces=N] "
                   "[--dump-traces=PATH] [--replay=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!replay_path.empty() && !dump_path.empty()) {
    std::fprintf(stderr, "--replay and --dump-traces are exclusive\n");
    return 2;
  }

  const auto model = [](std::size_t guess, std::size_t pt_byte) {
    return static_cast<double>(util::hamming_weight(
        crypto::subbytes_hypothesis(static_cast<std::uint8_t>(pt_byte),
                                    static_cast<std::uint8_t>(guess))));
  };

  if (!replay_path.empty()) {
    // ---- replay path: CPA over the archive, no simulation -------------
    std::optional<power::trace_store_reader> opened;
    try {
      opened.emplace(replay_path);
    } catch (const util::usca_error& e) {
      std::fprintf(stderr, "cannot replay: %s\n", e.what());
      return 2;
    }
    const power::trace_store_reader& reader = *opened;
    std::printf("== CPA attack replayed from '%s' ==\n\n",
                replay_path.c_str());
    std::printf("  archive: %zu traces x %zu samples, indices [%zu, %zu), "
                "%zu chunk(s), %.1f MiB payload\n",
                reader.traces(), reader.samples(), reader.first_index(),
                reader.next_index(), reader.chunk_count(),
                static_cast<double>(reader.payload_bytes()) /
                    (1024.0 * 1024.0));
    if (reader.traces() == 0) {
      std::fprintf(stderr, "archive holds no traces\n");
      return 2;
    }
    core::archive_source source(reader);
    core::cpa_sink cpa(0);
    core::pump(source, cpa);
    return report_and_check(cpa.cpa().solve(model, 256));
  }

  // ---- live path: acquisition campaign, optionally archived -----------
  std::printf("== CPA attack on simulated AES-128 (key byte 0, %zu traces, "
              "%s backend) ==\n\n",
              traces,
              std::string(sim::backend_kind_name(backend)).c_str());

  const crypto::aes_program_layout layout = crypto::generate_aes128_program();
  const crypto::aes_round_keys rk = crypto::expand_key(demo_key);

  core::acquisition_config config;
  config.traces = traces;
  config.seed = 42;
  config.averaging = 8;
  config.window =
      core::campaign_window{crypto::mark_encrypt_begin,
                            crypto::mark_round1_end};
  config.backend = backend;
  config.uarch = backend == sim::backend_kind::ooo ? sim::cortex_a7_ooo()
                                                   : sim::cortex_a7();
  core::acquisition_campaign campaign(sim::program_image(layout.prog),
                                      config);
  campaign.set_setup([&layout, &rk](std::size_t, util::xoshiro256& rng,
                                    sim::backend& core,
                                    std::vector<double>& labels) {
    crypto::aes_block pt;
    for (auto& b : pt) {
      b = rng.next_u8();
    }
    crypto::install_aes_inputs(core.memory(), layout, rk, pt);
    labels.resize(pt.size());
    for (std::size_t b = 0; b < pt.size(); ++b) {
      labels[b] = static_cast<double>(pt[b]); // all 16 -> full-key replay
    }
  });

  core::cpa_sink cpa(0);
  progress_sink progress;
  std::vector<core::trace_sink*> sinks = {&cpa, &progress};
  std::optional<core::store_sink> store;
  if (!dump_path.empty()) {
    power::trace_store_descriptor desc;
    desc.seed = config.seed;
    desc.config_hash =
        core::salted_config_hash(core::acquisition_config_hash(config), 0);
    store.emplace(dump_path, desc);
    sinks.push_back(&*store);
  }

  core::acquisition_source source(campaign);
  core::pump(source, sinks);

  if (store) {
    std::printf("  archived %zu traces to '%s' (replay with "
                "--replay=%s)\n",
                store->records(), dump_path.c_str(), dump_path.c_str());
  }
  return report_and_check(cpa.cpa().solve(model, 256));
}
