// End-to-end CPA attack demo against the generated AES-128 running on the
// simulated Cortex-A7 (a compact version of the paper's Section 5).
//
// Recovers key byte 0 from synthesized power traces with the coarse
// Hamming-weight-of-SubBytes-output model and prints the top candidates.
#include <cmath>
#include <cstdio>

#include "crypto/aes_codegen.h"
#include "power/synthesizer.h"
#include "sim/pipeline.h"
#include "stats/cpa.h"
#include "util/bitops.h"
#include "util/rng.h"

using namespace usca;

int main() {
  const std::size_t traces = 1'000;
  std::printf("== CPA attack on simulated AES-128 (key byte 0, %zu traces) "
              "==\n\n",
              traces);

  const crypto::aes_program_layout layout = crypto::generate_aes128_program();
  const crypto::aes_key key = {0xde, 0xad, 0xbe, 0xef, 0x01, 0x23,
                               0x45, 0x67, 0x89, 0xab, 0xcd, 0xef,
                               0x10, 0x32, 0x54, 0x76};
  const crypto::aes_round_keys rk = crypto::expand_key(key);

  power::trace_synthesizer synth(power::synthesis_config{}, 7);
  util::xoshiro256 rng(42);

  stats::partitioned_cpa cpa(0);
  bool ready = false;
  for (std::size_t t = 0; t < traces; ++t) {
    crypto::aes_block pt;
    for (auto& b : pt) {
      b = rng.next_u8();
    }
    sim::pipeline pipe(layout.prog, sim::cortex_a7());
    crypto::install_aes_inputs(pipe.memory(), layout, rk, pt);
    pipe.warm_caches();
    pipe.run();

    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    for (const auto& m : pipe.marks()) {
      if (m.id == crypto::mark_encrypt_begin) {
        begin = static_cast<std::uint32_t>(m.cycle);
      } else if (m.id == crypto::mark_round1_end) {
        end = static_cast<std::uint32_t>(m.cycle);
      }
    }
    const power::trace trace =
        synth.synthesize_averaged(pipe.activity(), begin, end, 8);
    if (!ready) {
      cpa = stats::partitioned_cpa(trace.size());
      ready = true;
    }
    cpa.add_trace(pt[0], trace);
    if ((t + 1) % 250 == 0) {
      std::printf("  collected %zu traces...\n", t + 1);
    }
  }

  const stats::cpa_result result = cpa.solve(
      [](std::size_t guess, std::size_t pt_byte) {
        return static_cast<double>(util::hamming_weight(
            crypto::subbytes_hypothesis(static_cast<std::uint8_t>(pt_byte),
                                        static_cast<std::uint8_t>(guess))));
      },
      256);

  // Rank all guesses by their correlation peak.
  std::vector<std::size_t> order(256);
  for (std::size_t g = 0; g < 256; ++g) {
    order[g] = g;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::fabs(result.peak_of(a).corr) >
           std::fabs(result.peak_of(b).corr);
  });

  std::printf("\ntop-5 key guesses:\n");
  for (int i = 0; i < 5; ++i) {
    const auto peak = result.peak_of(order[static_cast<std::size_t>(i)]);
    std::printf("  %d. guess 0x%02zx  |corr| %.4f at cycle %zu%s\n", i + 1,
                peak.guess, std::fabs(peak.corr), peak.sample,
                peak.guess == key[0] ? "   <== true key byte" : "");
  }
  std::printf("\ndistinguishing z-score of the true key: %.2f "
              "(>2.33 = 99%% confidence)\n",
              result.distinguishing_z(key[0]));
  return result.best().guess == key[0] ? 0 : 1;
}
