// Quickstart: assemble a program, run a campaign on the Cortex-A7-like
// pipeline through the generic acquisition engine, and test a leakage
// hypothesis against the synthesized power traces.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/example_quickstart
#include <cmath>
#include <cstdio>
#include <vector>

#include "asmx/assembler.h"
#include "core/acquisition.h"
#include "stats/pearson.h"
#include "util/bitops.h"

using namespace usca;

int main() {
  // 1. Assemble a tiny program: two xors separated by a nop.  At ISA
  //    level the values of r2 and r5 are unrelated; the pipeline will
  //    combine them anyway.
  const asmx::program prog = asmx::assemble(R"(
      nop
      nop
      mark #1
      eor r1, r2, r3
      nop
      eor r4, r5, r6
      nop
      nop
      nop
      mark #2
      halt
  )");

  // 2. Campaign: random inputs per trial, one synthesized trace each.
  //    The acquisition engine owns the simulation loop — worker-owned
  //    resettable pipelines, per-index seeding, records delivered in
  //    index order — so this example IS the hot path every large
  //    experiment of the repository runs on.
  const std::size_t trials = 5'000;
  core::acquisition_config config;
  config.traces = trials;
  config.seed = 2024;
  config.window = core::campaign_window{1, 2};
  core::acquisition_campaign campaign(sim::program_image(prog), config);
  campaign.set_setup([](std::size_t, util::xoshiro256& rng,
                        sim::backend& pipe, std::vector<double>& labels) {
    const std::uint32_t r2 = rng.next_u32();
    const std::uint32_t r5 = rng.next_u32();
    pipe.state().set_reg(isa::reg::r2, r2);
    pipe.state().set_reg(isa::reg::r3, rng.next_u32());
    pipe.state().set_reg(isa::reg::r5, r5);
    pipe.state().set_reg(isa::reg::r6, rng.next_u32());
    // The hypothesis value this trial contributes to the correlation.
    labels.assign(1, static_cast<double>(util::hamming_distance(r2, r5)));
  });

  std::vector<stats::pearson_accumulator> acc;
  campaign.run([&](core::acquisition_record&& rec) {
    if (acc.empty()) {
      acc.resize(rec.samples.size());
    }
    for (std::size_t s = 0; s < rec.samples.size(); ++s) {
      acc[s].add(rec.labels[0], rec.samples[s]);
    }
  });

  // 3. Correlate the hypothesis "HD(r2, r5)" against every cycle.
  std::printf("cycle | corr(HD(r2,r5), power)\n");
  std::printf("------+------------------------\n");
  double best = 0.0;
  std::size_t best_cycle = 0;
  for (std::size_t s = 0; s < acc.size(); ++s) {
    const double r = acc[s].correlation();
    std::printf("%5zu | %+.4f%s\n", s, r,
                stats::correlation_significant(r, trials, 0.995)
                    ? "  <== leaks (>99.5%)"
                    : "");
    if (std::abs(r) > std::abs(best)) {
      best = r;
      best_cycle = s;
    }
  }
  std::printf("\nThe two xor operands r2 and r5 — algorithmically unrelated "
              "values —\nare combined by the shared IS/EX operand bus and "
              "the ALU input latch:\nmax |corr| %.3f at cycle %zu.\n",
              std::abs(best), best_cycle);
  return 0;
}
