// Quickstart: assemble a program, run it on the Cortex-A7-like pipeline,
// synthesize a power trace, and test a leakage hypothesis.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "asmx/assembler.h"
#include "power/synthesizer.h"
#include "sim/pipeline.h"
#include "stats/pearson.h"
#include "util/bitops.h"
#include "util/rng.h"

using namespace usca;

int main() {
  // 1. Assemble a tiny program: two xors separated by a nop.  At ISA
  //    level the values of r2 and r5 are unrelated; the pipeline will
  //    combine them anyway.
  const asmx::program prog = asmx::assemble(R"(
      nop
      nop
      mark #1
      eor r1, r2, r3
      nop
      eor r4, r5, r6
      nop
      nop
      nop
      mark #2
      halt
  )");

  // 2. Campaign: random inputs per trial, one synthesized trace each.
  const std::size_t trials = 5'000;
  util::xoshiro256 rng(2024);
  power::trace_synthesizer synth(power::synthesis_config{}, 99);

  std::vector<double> model_hd_r2_r5;   // HD between the two first operands
  std::vector<std::vector<double>> traces;
  std::size_t samples = 0;

  for (std::size_t t = 0; t < trials; ++t) {
    sim::pipeline pipe(prog, sim::cortex_a7());
    const std::uint32_t r2 = rng.next_u32();
    const std::uint32_t r5 = rng.next_u32();
    pipe.state().set_reg(isa::reg::r2, r2);
    pipe.state().set_reg(isa::reg::r3, rng.next_u32());
    pipe.state().set_reg(isa::reg::r5, r5);
    pipe.state().set_reg(isa::reg::r6, rng.next_u32());
    pipe.warm_caches();
    pipe.run();

    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    for (const auto& m : pipe.marks()) {
      (m.id == 1 ? begin : end) = static_cast<std::uint32_t>(m.cycle);
    }
    traces.push_back(synth.synthesize(pipe.activity(), begin, end));
    samples = traces.back().size();
    model_hd_r2_r5.push_back(
        static_cast<double>(util::hamming_distance(r2, r5)));
  }

  // 3. Correlate the hypothesis "HD(r2, r5)" against every cycle.
  std::printf("cycle | corr(HD(r2,r5), power)\n");
  std::printf("------+------------------------\n");
  double best = 0.0;
  std::size_t best_cycle = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    stats::pearson_accumulator acc;
    for (std::size_t t = 0; t < trials; ++t) {
      acc.add(model_hd_r2_r5[t], traces[t][s]);
    }
    const double r = acc.correlation();
    std::printf("%5zu | %+.4f%s\n", s, r,
                stats::correlation_significant(r, trials, 0.995)
                    ? "  <== leaks (>99.5%)"
                    : "");
    if (std::abs(r) > std::abs(best)) {
      best = r;
      best_cycle = s;
    }
  }
  std::printf("\nThe two xor operands r2 and r5 — algorithmically unrelated "
              "values —\nare combined by the shared IS/EX operand bus and "
              "the ALU input latch:\nmax |corr| %.3f at cycle %zu.\n",
              std::abs(best), best_cycle);
  return 0;
}
