// The complete defensive loop of the paper's proposal: statically detect
// micro-architectural share combinations in a masked gadget, let the
// leakage-aware scheduling pass rewrite the code, and *dynamically verify*
// on the cycle-level models that the secret-dependent correlations are
// gone.
//
// Gadget: first-order masked XOR, c = a ^ b with a = a0^a1, b = b0^b1:
//
//     eor r1, r2, r4      ; c0 = a0 ^ b0
//     eor r5, r3, r6      ; c1 = a1 ^ b1
//
// Each share is uniform, each instruction is first-order secure — yet on
// the modelled Cortex-A7 the first-operand bus combines a0 with a1
// (leaking HW(a)) and the write-back buffer combines c0 with c1 (leaking
// HW(a ^ b)).  Neither combination is visible at ISA level.
//
// Verification runs through core::acquisition_campaign (the same
// parallel, per-index-seeded engine as the full-size experiments) and is
// repeated on the out-of-order backend: a schedule that is safe on the
// in-order pipeline is not automatically safe after rename/dynamic
// scheduling, so the hardened gadget must be re-verified per design
// point — exactly the paper's portability argument.
#include <cmath>
#include <cstdio>

#include "asmx/assembler.h"
#include "core/acquisition.h"
#include "core/leakage_aware_scheduler.h"
#include "isa/disasm.h"
#include "stats/pearson.h"
#include "util/bitops.h"

using namespace usca;
using isa::reg;

namespace {

void print_program(const char* title, const asmx::program& prog) {
  std::printf("%s\n", title);
  for (std::size_t i = 0; i < prog.code.size(); ++i) {
    std::printf("  %2zu: %s\n", i, isa::disassemble(prog.code[i]).c_str());
  }
}

struct leak_probe {
  double hw_a = 0.0;       ///< max |corr| of HW(a) = HD(a0, a1)
  double hw_a_xor_b = 0.0; ///< max |corr| of HW(a^b) = HD(c0, c1)
};

constexpr std::size_t probe_trials = 8'000;

/// Correlates the two share-combination models against the power of
/// every cycle of the gadget, on the selected core model.
leak_probe probe(const asmx::program& prog, std::uint64_t seed,
                 sim::backend_kind kind) {
  core::acquisition_config config;
  config.traces = probe_trials;
  config.seed = seed;
  config.averaging = 1;
  config.full_run_window = true;
  config.backend = kind;
  config.uarch = kind == sim::backend_kind::ooo ? sim::cortex_a7_ooo()
                                                : sim::cortex_a7();
  core::acquisition_campaign campaign(sim::program_image(prog), config);
  campaign.set_setup([](std::size_t, util::xoshiro256& rng,
                        sim::backend& pipe, std::vector<double>& labels) {
    const std::uint32_t a = rng.next_u32();
    const std::uint32_t b = rng.next_u32();
    const std::uint32_t mask_a = rng.next_u32();
    const std::uint32_t mask_b = rng.next_u32();
    pipe.state().set_reg(reg::r2, a ^ mask_a); // a0
    pipe.state().set_reg(reg::r3, mask_a);     // a1
    pipe.state().set_reg(reg::r4, b ^ mask_b); // b0
    pipe.state().set_reg(reg::r6, mask_b);     // b1
    labels.assign({static_cast<double>(util::hamming_weight(a)),
                   static_cast<double>(util::hamming_weight(a ^ b))});
  });

  std::vector<stats::pearson_accumulator> acc_a;
  std::vector<stats::pearson_accumulator> acc_c;
  campaign.run([&](core::acquisition_record&& rec) {
    if (rec.index == 0) {
      acc_a.resize(rec.samples.size());
      acc_c.resize(rec.samples.size());
    }
    for (std::size_t s = 0; s < rec.samples.size(); ++s) {
      acc_a[s].add(rec.labels[0], rec.samples[s]);
      acc_c[s].add(rec.labels[1], rec.samples[s]);
    }
  });

  leak_probe out;
  for (std::size_t s = 0; s < acc_a.size(); ++s) {
    out.hw_a = std::max(out.hw_a, std::fabs(acc_a[s].correlation()));
    out.hw_a_xor_b =
        std::max(out.hw_a_xor_b, std::fabs(acc_c[s].correlation()));
  }
  return out;
}

const char* verdict(double corr, double threshold) {
  return corr > threshold ? "LEAKS" : "clean";
}

void print_probe_table(const char* backend_name, const leak_probe& before,
                       const leak_probe& after, double threshold) {
  std::printf("  [%s]\n", backend_name);
  std::printf("  model        original   hardened\n");
  std::printf("  HW(a)        %.4f %-7s %.4f %s\n", before.hw_a,
              verdict(before.hw_a, threshold), after.hw_a,
              verdict(after.hw_a, threshold));
  std::printf("  HW(a^b)      %.4f %-7s %.4f %s\n", before.hw_a_xor_b,
              verdict(before.hw_a_xor_b, threshold), after.hw_a_xor_b,
              verdict(after.hw_a_xor_b, threshold));
}

} // namespace

int main() {
  std::printf("== leakage-aware hardening of a masked XOR gadget ==\n\n");
  const asmx::program original = asmx::assemble("eor r1, r2, r4\n"
                                                "eor r5, r3, r6\n"
                                                "halt\n");
  print_program("original gadget (r2/r3 = shares of a, r4/r6 = shares of b):",
                original);

  const core::leakage_aware_scheduler scheduler(sim::cortex_a7());
  core::hardening_options options;
  options.secret_registers = {reg::r2, reg::r3, reg::r4, reg::r6};
  const core::hardening_result result = scheduler.harden(original, options);

  std::printf("\nstatic scan: %zu secret combination(s) before, %zu after "
              "(%d swap(s), %d reorder(s), %d separator(s))\n\n",
              result.findings_before, result.findings_after, result.swaps,
              result.reorders, result.separators);
  print_program("hardened gadget:", result.hardened);

  const double threshold =
      stats::significance_threshold(probe_trials, 0.995);

  std::printf("\ndynamic verification (%zu traces each, in-order "
              "pipeline):\n",
              probe_trials);
  const leak_probe before = probe(original, 21, sim::backend_kind::inorder);
  const leak_probe after =
      probe(result.hardened, 21, sim::backend_kind::inorder);
  print_probe_table("in-order", before, after, threshold);
  std::printf("\nBoth combinations predicted by the scanner are real on the\n"
              "pipeline (operand bus: HW(a); write-back buffer: HW(a^b)),\n"
              "and the transformed code removes them.\n");

  // The scheduler reasoned about the in-order pipeline; re-verify the
  // same binary on the OoO backend, where rename and dynamic scheduling
  // reshape which values meet in which structure.
  std::printf("\ncross-design-point verification (out-of-order backend):\n");
  const leak_probe ooo_before = probe(original, 21, sim::backend_kind::ooo);
  const leak_probe ooo_after =
      probe(result.hardened, 21, sim::backend_kind::ooo);
  print_probe_table("out-of-order", ooo_before, ooo_after, threshold);

  const bool inorder_ok =
      before.hw_a > threshold && before.hw_a_xor_b > threshold &&
      after.hw_a < threshold && after.hw_a_xor_b < threshold;
  const bool ooo_ok =
      ooo_after.hw_a < threshold && ooo_after.hw_a_xor_b < threshold;
  if (ooo_ok) {
    std::printf("\nthe hardened schedule stays clean under rename/OoO "
                "issue on this design point.\n");
  } else {
    std::printf(
        "\nthe hardened schedule LEAKS AGAIN under rename/OoO issue: the\n"
        "separator that splits the shares on the in-order pipeline does\n"
        "not survive dynamic scheduling, which re-packs the two eors onto\n"
        "shared issue/broadcast structures.  This is the paper's\n"
        "portability argument made concrete — a hardening is a property\n"
        "of one micro-architecture, not of the binary; re-run the\n"
        "scheduler against the deployment core.\n");
  }
  std::printf("%s\n", inorder_ok
                          ? "HARDENING VERIFIED on the target (in-order) "
                            "core; see the cross-design-point table above"
                          : "UNEXPECTED OUTCOME");
  return inorder_ok ? 0 : 1;
}
