// The complete defensive loop of the paper's proposal: statically detect
// micro-architectural share combinations in a masked gadget, let the
// leakage-aware scheduling pass rewrite the code, and *dynamically verify*
// on the pipeline that the secret-dependent correlations are gone.
//
// Gadget: first-order masked XOR, c = a ^ b with a = a0^a1, b = b0^b1:
//
//     eor r1, r2, r4      ; c0 = a0 ^ b0
//     eor r5, r3, r6      ; c1 = a1 ^ b1
//
// Each share is uniform, each instruction is first-order secure — yet on
// the modelled Cortex-A7 the first-operand bus combines a0 with a1
// (leaking HW(a)) and the write-back buffer combines c0 with c1 (leaking
// HW(a ^ b)).  Neither combination is visible at ISA level.
#include <cmath>
#include <cstdio>

#include "asmx/assembler.h"
#include "core/leakage_aware_scheduler.h"
#include "isa/disasm.h"
#include "power/synthesizer.h"
#include "sim/pipeline.h"
#include "stats/pearson.h"
#include "util/bitops.h"
#include "util/rng.h"

using namespace usca;
using isa::reg;

namespace {

void print_program(const char* title, const asmx::program& prog) {
  std::printf("%s\n", title);
  for (std::size_t i = 0; i < prog.code.size(); ++i) {
    std::printf("  %2zu: %s\n", i, isa::disassemble(prog.code[i]).c_str());
  }
}

struct leak_probe {
  double hw_a = 0.0;     ///< max |corr| of HW(a) = HD(a0, a1)
  double hw_a_xor_b = 0.0; ///< max |corr| of HW(a^b) = HD(c0, c1)
};

leak_probe probe(const asmx::program& prog, std::uint64_t seed) {
  const std::size_t trials = 8'000;
  util::xoshiro256 rng(seed);
  power::trace_synthesizer synth(power::synthesis_config{}, seed ^ 0xf00);

  std::vector<double> model_a;
  std::vector<double> model_c;
  std::vector<power::trace> traces;
  std::size_t samples = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    sim::pipeline pipe(prog, sim::cortex_a7());
    const std::uint32_t a = rng.next_u32();
    const std::uint32_t b = rng.next_u32();
    const std::uint32_t mask_a = rng.next_u32();
    const std::uint32_t mask_b = rng.next_u32();
    pipe.state().set_reg(reg::r2, a ^ mask_a); // a0
    pipe.state().set_reg(reg::r3, mask_a);     // a1
    pipe.state().set_reg(reg::r4, b ^ mask_b); // b0
    pipe.state().set_reg(reg::r6, mask_b);     // b1
    pipe.warm_caches();
    pipe.run();
    traces.push_back(synth.synthesize(
        pipe.activity(), 0, static_cast<std::uint32_t>(pipe.cycles() + 4)));
    samples = traces.back().size();
    model_a.push_back(static_cast<double>(util::hamming_weight(a)));
    model_c.push_back(static_cast<double>(util::hamming_weight(a ^ b)));
  }
  leak_probe out;
  for (std::size_t s = 0; s < samples; ++s) {
    stats::pearson_accumulator acc_a;
    stats::pearson_accumulator acc_c;
    for (std::size_t t = 0; t < trials; ++t) {
      acc_a.add(model_a[t], traces[t][s]);
      acc_c.add(model_c[t], traces[t][s]);
    }
    out.hw_a = std::max(out.hw_a, std::fabs(acc_a.correlation()));
    out.hw_a_xor_b =
        std::max(out.hw_a_xor_b, std::fabs(acc_c.correlation()));
  }
  return out;
}

const char* verdict(double corr, double threshold) {
  return corr > threshold ? "LEAKS" : "clean";
}

} // namespace

int main() {
  std::printf("== leakage-aware hardening of a masked XOR gadget ==\n\n");
  const asmx::program original = asmx::assemble("eor r1, r2, r4\n"
                                                "eor r5, r3, r6\n"
                                                "halt\n");
  print_program("original gadget (r2/r3 = shares of a, r4/r6 = shares of b):",
                original);

  const core::leakage_aware_scheduler scheduler(sim::cortex_a7());
  core::hardening_options options;
  options.secret_registers = {reg::r2, reg::r3, reg::r4, reg::r6};
  const core::hardening_result result = scheduler.harden(original, options);

  std::printf("\nstatic scan: %zu secret combination(s) before, %zu after "
              "(%d swap(s), %d reorder(s), %d separator(s))\n\n",
              result.findings_before, result.findings_after, result.swaps,
              result.reorders, result.separators);
  print_program("hardened gadget:", result.hardened);

  std::printf("\ndynamic verification (8k traces):\n");
  const double threshold = stats::significance_threshold(8'000, 0.995);
  const leak_probe before = probe(original, 21);
  const leak_probe after = probe(result.hardened, 21);
  std::printf("  model        original   hardened\n");
  std::printf("  HW(a)        %.4f %-7s %.4f %s\n", before.hw_a,
              verdict(before.hw_a, threshold), after.hw_a,
              verdict(after.hw_a, threshold));
  std::printf("  HW(a^b)      %.4f %-7s %.4f %s\n", before.hw_a_xor_b,
              verdict(before.hw_a_xor_b, threshold), after.hw_a_xor_b,
              verdict(after.hw_a_xor_b, threshold));
  std::printf("\nBoth combinations predicted by the scanner are real on the\n"
              "pipeline (operand bus: HW(a); write-back buffer: HW(a^b)),\n"
              "and the transformed code removes them.\n");
  const bool ok = before.hw_a > threshold && before.hw_a_xor_b > threshold &&
                  after.hw_a < threshold && after.hw_a_xor_b < threshold;
  std::printf("%s\n", ok ? "HARDENING VERIFIED" : "UNEXPECTED OUTCOME");
  return ok ? 0 : 1;
}
