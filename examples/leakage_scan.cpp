// Static leakage scanning of a masked implementation (the Section 4.2
// toolchain use case).
//
// A first-order masked xor gadget is scanned under the Cortex-A7 model.
// The scanner reports that the two shares of the secret are combined by
// the IS/EX operand bus — a leak invisible to ISA-level reasoning — and
// shows that swapping the operands of one (commutative!) instruction
// changes the leakage, exactly the pitfall the paper warns about.
#include <cstdio>

#include "asmx/assembler.h"
#include "core/leakage_scanner.h"

using namespace usca;

namespace {

void scan_and_print(const char* title, const char* source) {
  std::printf("--- %s ---\n%s\n", title, source);
  const core::leakage_scanner scanner(sim::cortex_a7());
  const auto findings = scanner.scan(asmx::assemble(source));
  if (findings.empty()) {
    std::printf("  no findings\n\n");
    return;
  }
  for (const auto& f : findings) {
    std::printf("  %s\n", core::to_string(f).c_str());
  }
  std::printf("\n");
}

} // namespace

int main() {
  std::printf("== static micro-architectural leakage scan ==\n\n");

  // r2 = share A of the secret, r4 = share B (secret = A ^ B), r3 = fresh
  // mask.  Each instruction alone is first-order secure.
  scan_and_print("masked gadget (original)",
                 "eor r1, r2, r3\n"
                 "eor r5, r4, r3\n");

  std::printf("note the operand-bus finding combining r2 (share A) and r4\n"
              "(share B): the bus transition leaks HD(A, B) = HW(A ^ B) —\n"
              "the *unmasked secret* — although no instruction ever\n"
              "computes A ^ B.\n\n");

  // Swapping the commutative operands of the second eor moves share B to
  // the other bus: now it combines with the mask instead of share A.
  scan_and_print("masked gadget (operands swapped)",
                 "eor r1, r2, r3\n"
                 "eor r5, r3, r4\n");

  std::printf("after the swap the shares no longer meet; the semantically\n"
              "neutral change is security relevant (Section 4.2).\n\n");

  // Inserting a nop does NOT help: the ALU input latches keep share A
  // alive across it, and the nop adds Hamming-weight exposure on top.
  scan_and_print("masked gadget (nop inserted)",
                 "eor r1, r2, r3\n"
                 "nop\n"
                 "eor r5, r4, r3\n");

  // Memory remanence: a sensitive byte parked in memory combines with the
  // next loaded value inside the LSU.
  scan_and_print("memory remanence",
                 "strb r1, [r8]\n"
                 "ldr  r2, [r9]\n"
                 "ldrb r3, [r10]\n");
  return 0;
}
