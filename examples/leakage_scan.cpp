// Static leakage scanning of a masked implementation (the Section 4.2
// toolchain use case), cross-checked dynamically on the pipeline.
//
// A first-order masked xor gadget is scanned under the Cortex-A7 model.
// The scanner reports that the two shares of the secret are combined by
// the IS/EX operand bus — a leak invisible to ISA-level reasoning — and
// shows that swapping the operands of one (commutative!) instruction
// changes the leakage, exactly the pitfall the paper warns about.
//
// Every static verdict is then confirmed dynamically: a
// core::acquisition_campaign (the same parallel, per-index-seeded engine
// as the full-size experiments) simulates each variant a few thousand
// times and correlates HW(A ^ B) — the *unmasked secret* — against the
// synthesized power.
#include <cmath>
#include <cstdio>

#include "asmx/assembler.h"
#include "core/acquisition.h"
#include "core/leakage_scanner.h"
#include "stats/pearson.h"
#include "util/bitops.h"

using namespace usca;
using isa::reg;

namespace {

void scan_and_print(const char* title, const char* source) {
  std::printf("--- %s ---\n%s\n", title, source);
  const core::leakage_scanner scanner(sim::cortex_a7());
  const auto findings = scanner.scan(asmx::assemble(source));
  if (findings.empty()) {
    std::printf("  no findings\n\n");
    return;
  }
  for (const auto& f : findings) {
    std::printf("  %s\n", core::to_string(f).c_str());
  }
  std::printf("\n");
}

constexpr std::size_t probe_trials = 6'000;

struct secret_probe {
  double max_corr = 0.0;       ///< max |corr(HW(A^B))| over all cycles
  std::size_t leaking_cycles = 0; ///< cycles above the threshold
};

/// Correlates HW(A ^ B) — the unmasked secret — against every cycle of
/// the gadget, measured through the acquisition engine.  r2 = share A,
/// r4 = share B, r3 = fresh mask.  Each leaking *cycle* is one
/// micro-architectural combination point (issue-stage bus, write-back
/// path, ...), so the count tracks the scanner's finding list.
secret_probe probe_secret(const char* source, double threshold) {
  const asmx::program prog = asmx::assemble(source);
  core::acquisition_config config;
  config.traces = probe_trials;
  config.seed = 0x5ca9;
  config.averaging = 1;
  config.full_run_window = true;
  core::acquisition_campaign campaign(sim::program_image(prog), config);
  campaign.set_setup([](std::size_t, util::xoshiro256& rng,
                        sim::backend& pipe, std::vector<double>& labels) {
    const std::uint32_t a = rng.next_u32();
    const std::uint32_t b = rng.next_u32();
    const std::uint32_t mask = rng.next_u32();
    pipe.state().set_reg(reg::r2, a);
    pipe.state().set_reg(reg::r4, b);
    pipe.state().set_reg(reg::r3, mask);
    labels.assign({static_cast<double>(util::hamming_weight(a ^ b))});
  });

  std::vector<stats::pearson_accumulator> acc;
  campaign.run([&](core::acquisition_record&& rec) {
    if (rec.index == 0) {
      acc.resize(rec.samples.size());
    }
    for (std::size_t s = 0; s < rec.samples.size(); ++s) {
      acc[s].add(rec.labels[0], rec.samples[s]);
    }
  });
  secret_probe out;
  for (const auto& a : acc) {
    const double corr = std::fabs(a.correlation());
    out.max_corr = std::max(out.max_corr, corr);
    if (corr > threshold) {
      ++out.leaking_cycles;
    }
  }
  return out;
}

void probe_and_print(const char* title, const char* source,
                     double threshold) {
  const secret_probe probe = probe_secret(source, threshold);
  std::printf("  %-28s max |corr(HW(A^B))| = %.4f, %zu leaking cycle(s)"
              "  -> %s\n",
              title, probe.max_corr, probe.leaking_cycles,
              probe.max_corr > threshold ? "LEAKS" : "clean");
}

} // namespace

int main() {
  std::printf("== static micro-architectural leakage scan ==\n\n");

  // r2 = share A of the secret, r4 = share B (secret = A ^ B), r3 = fresh
  // mask.  Each instruction alone is first-order secure.
  scan_and_print("masked gadget (original)",
                 "eor r1, r2, r3\n"
                 "eor r5, r4, r3\n");

  std::printf("note the operand-bus finding combining r2 (share A) and r4\n"
              "(share B): the bus transition leaks HD(A, B) = HW(A ^ B) —\n"
              "the *unmasked secret* — although no instruction ever\n"
              "computes A ^ B.\n\n");

  // Swapping the commutative operands of the second eor moves share B to
  // the other bus: now it combines with the mask instead of share A.
  scan_and_print("masked gadget (operands swapped)",
                 "eor r1, r2, r3\n"
                 "eor r5, r3, r4\n");

  std::printf("after the swap the shares no longer meet on the operand\n"
              "buses; the semantically neutral change is security relevant\n"
              "(Section 4.2).  The write-back finding remains — the\n"
              "dynamic check below quantifies both.\n\n");

  // Inserting a nop does NOT help: the ALU input latches keep share A
  // alive across it, and the nop adds Hamming-weight exposure on top.
  scan_and_print("masked gadget (nop inserted)",
                 "eor r1, r2, r3\n"
                 "nop\n"
                 "eor r5, r4, r3\n");

  // Memory remanence: a sensitive byte parked in memory combines with the
  // next loaded value inside the LSU.
  scan_and_print("memory remanence",
                 "strb r1, [r8]\n"
                 "ldr  r2, [r9]\n"
                 "ldrb r3, [r10]\n");

  // ---- dynamic confirmation ------------------------------------------
  // The static findings are claims about the micro-architecture; check
  // them on the cycle-level model by attacking the unmasked secret
  // directly (threshold: 99.5% significance for the trial count).
  const double threshold =
      stats::significance_threshold(probe_trials, 0.995);
  std::printf("== dynamic confirmation (%zu traces each, |corr| "
              "threshold %.4f) ==\n\n",
              probe_trials, threshold);
  probe_and_print("original:",
                  "eor r1, r2, r3\n"
                  "eor r5, r4, r3\n"
                  "halt\n",
                  threshold);
  probe_and_print("operands swapped:",
                  "eor r1, r2, r3\n"
                  "eor r5, r3, r4\n"
                  "halt\n",
                  threshold);
  probe_and_print("nop inserted:",
                  "eor r1, r2, r3\n"
                  "nop\n"
                  "eor r5, r4, r3\n"
                  "halt\n",
                  threshold);
  std::printf(
      "\nevery variant leaks the unmasked secret — as the scanner says:\n"
      "besides the operand bus, the two *results* (A^m and B^m) always\n"
      "combine on the shared write-back path, and HD(A^m, B^m) is again\n"
      "HW(A^B).  The swap removes exactly one combination point (compare\n"
      "the leaking-cycle counts), the nop converts combinations into\n"
      "boundary effects without removing them.  Closing all of them needs\n"
      "the scheduling pass demonstrated by example_harden_gadget.\n");
  return 0;
}
